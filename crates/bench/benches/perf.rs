//! Criterion performance benchmarks of the analysis pipeline itself:
//! the suggester/matcher frame throughput that makes the automated markup
//! 2700× faster than manual annotation, the device simulation rate, and
//! the governor decision costs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use interlag_core::matcher::Matcher;
use interlag_core::suggester::{Suggester, SuggesterConfig};
use interlag_device::device::{CaptureMode, Device, DeviceConfig};
use interlag_device::dvfs::{FixedGovernor, Governor, LoadSample};
use interlag_device::script::InteractionCategory;
use interlag_evdev::replay::ReplayAgent;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_governors::{Conservative, Interactive, Ondemand};
use interlag_power::calibrate::{calibrate, CalibrationConfig};
use interlag_power::energy::{ActivitySample, ActivityTrace, EnergyMeter};
use interlag_power::model::PowerModel;
use interlag_power::opp::OppTable;
use interlag_video::frame::FrameBuffer;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};

fn synthetic_video(frames: u32, change_every: u32) -> VideoStream {
    let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
    let mut current = {
        let mut f = FrameBuffer::new(72, 120);
        f.hash_paint(f.bounds(), 1);
        Arc::new(f)
    };
    for i in 0..frames {
        if i % change_every == 0 && i > 0 {
            let mut f = FrameBuffer::new(72, 120);
            f.hash_paint(f.bounds(), i as u64);
            current = Arc::new(f);
        }
        v.push(SimTime::from_micros(i as u64 * 33_333), current.clone()).unwrap();
    }
    v
}

fn bench_suggester(c: &mut Criterion) {
    let video = synthetic_video(600, 40);
    let suggester = Suggester::new(SuggesterConfig::default());
    let mut group = c.benchmark_group("suggester");
    group.throughput(Throughput::Elements(600));
    group.bench_function("change_sequence_600_frames", |b| {
        b.iter(|| suggester.change_sequence(&video, 0, 600))
    });
    group.bench_function("suggest_600_frames", |b| {
        b.iter(|| suggester.suggest(&video, SimTime::ZERO, SimTime::from_secs(30)))
    });
    group.finish();
}

/// The pre-optimisation matcher walk: per-frame naive masked count with no
/// digest gate, no compiled mask, no memoisation — the baseline the
/// fast-path numbers in EXPERIMENTS.md are measured against.
fn naive_match_walk(
    video: &VideoStream,
    annotation: &interlag_core::annotation::LagAnnotation,
) -> u32 {
    let mut remaining = annotation.occurrence.max(1);
    let mut in_match = false;
    for frame in video.frames() {
        let matches = annotation.mask.count_diff(
            &annotation.image,
            &frame.buf,
            annotation.tolerance.value_tolerance,
        ) <= annotation.tolerance.pixel_budget;
        if matches && !in_match {
            remaining -= 1;
            if remaining == 0 {
                return frame.index;
            }
        }
        in_match = matches;
    }
    panic!("ending not found");
}

fn bench_matcher(c: &mut Criterion) {
    let video = synthetic_video(600, 40);
    // Annotate the final frame as the ending: the matcher must walk all
    // 600 frames to find it.
    let last = video.frames().last().expect("frames present").buf.as_ref().clone();
    let annotation = interlag_core::annotation::LagAnnotation {
        interaction_id: 0,
        image: last,
        mask: Mask::new(),
        tolerance: MatchTolerance::EXACT,
        occurrence: 1,
        threshold: SimDuration::from_secs(1),
    };
    let mut masked = annotation.clone();
    masked.mask = Mask::status_bar(72, 6);
    masked.mask.apply(&mut masked.image);
    let matcher = Matcher::new();
    let mut group = c.benchmark_group("matcher");
    group.throughput(Throughput::Elements(600));
    group.bench_function("walk_600_frames", |b| {
        b.iter(|| matcher.match_lag(&video, SimTime::ZERO, &annotation).expect("found"))
    });
    group.bench_function("walk_600_frames_masked", |b| {
        b.iter(|| matcher.match_lag(&video, SimTime::ZERO, &masked).expect("found"))
    });
    group.bench_function("walk_600_frames_naive", |b| {
        b.iter(|| naive_match_walk(&video, &annotation))
    });
    group.bench_function("walk_600_frames_masked_naive", |b| {
        b.iter(|| naive_match_walk(&video, &masked))
    });
    group.finish();
}

fn bench_device_sim(c: &mut Criterion) {
    // A 30-second workload; reports simulated-seconds per wall-second.
    let mut builder = WorkloadBuilder::new(7);
    for i in 0..6 {
        builder.quick_tap(&format!("tap {i}"), 300 * MCYCLES, InteractionCategory::SimpleFrequent);
        builder.think_ms(3_000, 4_000);
    }
    let workload = builder.build("perf", "simulation-rate workload");
    let trace = workload.script.record_trace();

    let mut group = c.benchmark_group("device");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.run_until().as_millis()));
    for (name, capture) in
        [("sim_30s_no_video", CaptureMode::None), ("sim_30s_hdmi", CaptureMode::Hdmi)]
    {
        let config = DeviceConfig { capture, ..Default::default() };
        let device = Device::new(config);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut gov = FixedGovernor::new(device.config().opps.max_freq());
                device.run(
                    &workload.script,
                    ReplayAgent::new(trace.clone()),
                    &mut gov,
                    workload.run_until(),
                )
            })
        });
    }
    group.finish();
}

fn bench_governors(c: &mut Criterion) {
    let table = OppTable::snapdragon_8074();
    let window = SimDuration::from_millis(20);
    let load = LoadSample { busy: window / 2, window };
    let mut group = c.benchmark_group("governor_decision");
    group.bench_function("ondemand", |b| {
        let mut g = Ondemand::default();
        g.init(&table);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += window;
            g.on_sample(t, load, &table)
        })
    });
    group.bench_function("conservative", |b| {
        let mut g = Conservative::default();
        g.init(&table);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += window;
            g.on_sample(t, load, &table)
        })
    });
    group.bench_function("interactive", |b| {
        let mut g = Interactive::for_table(&table);
        g.init(&table);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += window;
            g.on_sample(t, load, &table)
        })
    });
    group.finish();
}

fn bench_energy_meter(c: &mut Criterion) {
    let table = OppTable::snapdragon_8074();
    let measured = calibrate(&table, &PowerModel::krait_like(), &CalibrationConfig::default());
    let meter = EnergyMeter::new(measured);
    let mut trace = ActivityTrace::new();
    let freqs: Vec<_> = table.frequencies().collect();
    for i in 0..10_000u64 {
        trace.push(ActivitySample {
            start: SimTime::from_millis(i * 20),
            duration: SimDuration::from_millis(20),
            freq: freqs[(i % 14) as usize],
            busy: SimDuration::from_millis(i % 21),
        });
    }
    let mut group = c.benchmark_group("energy");
    group.throughput(Throughput::Elements(trace.samples().len() as u64));
    group.bench_function("meter_10k_samples", |b| b.iter(|| meter.measure(&trace)));
    group.finish();
}

fn bench_frame_diff(c: &mut Criterion) {
    let mut a = FrameBuffer::new(72, 120);
    a.hash_paint(a.bounds(), 1);
    let mut b2 = a.clone();
    b2.hash_paint(interlag_video::frame::Rect::new(20, 40, 30, 30), 2);
    let mask = Mask::status_bar(72, 6);
    let compiled = mask.compile(72, 120);
    // Warm the digest caches so the digest benches measure the steady
    // state (the matcher compares each frame against many candidates).
    let _ = (a.digest(), b2.digest());
    let mut group = c.benchmark_group("frame_diff");
    group.throughput(Throughput::Elements(72 * 120));
    group.bench_function("unmasked", |b| b.iter(|| a.count_diff(&b2, 0)));
    group.bench_function("unmasked_early_exit", |b| b.iter(|| a.differs_more_than(&b2, 0, 0)));
    group.bench_function("digest_gated_exact", |b| {
        b.iter(|| MatchTolerance::EXACT.matches(&Mask::new(), &a, &b2))
    });
    group.bench_function("masked", |b| b.iter(|| mask.count_diff(&a, &b2, 0)));
    group.bench_function("masked_compiled", |b| b.iter(|| compiled.count_diff(&a, &b2, 0)));
    group.bench_function("masked_compiled_early_exit", |b| {
        b.iter(|| compiled.differs_more_than(&a, &b2, 0, 0))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_suggester,
    bench_matcher,
    bench_device_sim,
    bench_governors,
    bench_energy_meter,
    bench_frame_diff
);
criterion_main!(benches);
