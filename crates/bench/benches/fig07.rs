//! Figure 7 — the suggester at work: the 0/1 change sequence of the video
//! during a Gallery launch at the lowest CPU frequency, the suggested lag
//! endings, and the §II-D claims (8–10 suggestions for the ~200-frame
//! load; a ~20× reduction in frames a human must look at; setting the
//! required still period to 30 cuts the suggestions further).

use interlag_bench::{banner, lab_with_reps};
use interlag_core::suggester::{Suggester, SuggesterConfig};
use interlag_device::dvfs::FixedGovernor;
use interlag_workloads::datasets::Dataset;

fn main() {
    let workload = Dataset::D01.build();
    let lab = lab_with_reps(1);

    // Capture the reference video at the lowest frequency — loading is
    // slowest there, giving the richest suggestion window.
    let trace = workload.script.record_trace();
    let mut gov = FixedGovernor::new(lab.device().config().opps.min_freq());
    let run = lab.run(&workload, trace, &mut gov).expect("clean run");
    let video = run.video.as_ref().expect("capture on");

    // The Gallery launch is the first interaction.
    let beginnings = run.lag_beginnings();
    let (first_id, input) = beginnings[0];
    let window_end = beginnings[1].1;

    let mask = {
        let screen = lab.device().config().screen;
        let mut m = screen.status_bar_mask();
        m.exclude(screen.cursor_rect);
        m.exclude(screen.spinner_rect);
        m
    };
    let suggester = Suggester::new(SuggesterConfig { mask: mask.clone(), ..Default::default() });

    banner(
        "FIGURE 7 — suggester change sequence and suggestions",
        &format!(
            "Dataset 01, interaction {first_id} ('launch Gallery') at 0.30 GHz; \
             input at frame {}",
            video.first_frame_at_or_after(input)
        ),
    );

    // The inner representation: run-length encoded ones and zeros.
    let first = video.first_frame_at_or_after(input);
    let last = video.first_frame_at_or_after(window_end);
    let changes = suggester.change_sequence(video, first, last);
    let mut rle = String::new();
    let mut i = 0;
    while i < changes.len() {
        let bit = changes[i];
        let mut n = 1;
        while i + n < changes.len() && changes[i + n] == bit {
            n += 1;
        }
        use std::fmt::Write as _;
        if n <= 3 {
            for _ in 0..n {
                rle.push(if bit { '1' } else { '0' });
            }
        } else {
            let _ = write!(rle, "{}{{{n}}}", if bit { '1' } else { '0' });
        }
        i += n;
    }
    println!("change sequence (run-length): {rle}");

    let suggestions = suggester.suggest(video, input, window_end);
    println!("\nsuggested lag-ending frames:");
    for s in &suggestions {
        println!(
            "  frame {:>6} at {:>8.2} s (still for {} frames)",
            s.frame_index,
            s.time.as_secs_f64(),
            s.still_run
        );
    }

    let frames = suggester.frames_in_window(video, input, window_end);
    println!(
        "\n{} suggestions out of {} frames in the window -> reduction factor {:.0}x",
        suggestions.len(),
        frames,
        frames as f64 / suggestions.len().max(1) as f64
    );
    println!("(paper: 8-10 suggestions for the Gallery load, factor ~20)");

    // §II-D: requiring 30 still frames thins the suggestions.
    let strict = Suggester::new(SuggesterConfig { mask, min_still_run: 30, ..Default::default() });
    let strict_suggestions = strict.suggest(video, input, window_end);
    println!(
        "\nwith min_still_run = 30: {} suggestions (paper: \"reduced to 2\")",
        strict_suggestions.len()
    );

    // The true ending must always remain among the suggestions.
    let service = run.interactions[first_id].service_time.expect("serviced");
    assert!(
        suggestions
            .iter()
            .any(|s| s.time >= service && s.time.as_micros() - service.as_micros() < 40_000),
        "the true ending frame must be suggested"
    );
    println!("\ntrue ending is among the suggestions: OK");
}
