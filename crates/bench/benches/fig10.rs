//! Figure 10 — input classification for all workloads including the
//! 24-hour recording: taps vs swipes (left bars) and actual vs spurious
//! lags (right bars).
//!
//! Taps/swipes are reconstructed from the raw recorded traces by the
//! multi-touch classifier; actual/spurious lags come from replaying each
//! workload once and observing which inputs the apps reacted to.

use interlag_bench::{banner, lab_with_reps, rule};
use interlag_device::device::CaptureMode;
use interlag_device::dvfs::FixedGovernor;
use interlag_evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag_workloads::datasets::Dataset;

fn main() {
    banner(
        "FIGURE 10 — input classification per dataset",
        "left bars: taps / swipes; right bars: actual lags / spurious lags",
    );
    println!(
        "{:<8} {:>6} {:>7} {:>6} {:>7} {:>12} {:>14}",
        "Dataset", "taps", "swipes", "keys", "total", "actual lags", "spurious lags"
    );
    rule(72);

    // The 24-hour run only needs ground truth, not video.
    let mut lab_cfg = interlag_core::experiment::LabConfig::default();
    lab_cfg.device.capture = CaptureMode::None;
    let lab = lab_with_reps(1);
    drop(lab); // classification path builds its own device below
    let device = interlag_device::device::Device::new(lab_cfg.device.clone());

    let mut totals = (0usize, 0usize, 0usize, 0usize);
    for ds in Dataset::TEN_MINUTE.iter().copied().chain([Dataset::Day24h]) {
        let w = ds.build();
        let trace = w.script.record_trace();
        let inputs = classify_trace(&trace, &ClassifierConfig::default());
        let counts = count_inputs(&inputs);

        let mut gov = FixedGovernor::new(lab_cfg.device.opps.max_freq());
        let run = device.run(
            &w.script,
            interlag_evdev::replay::ReplayAgent::new(trace),
            &mut gov,
            w.run_until(),
        );
        let run = run.expect("clean run");
        let actual = run.interactions.iter().filter(|r| r.triggered && !r.spurious).count();
        let spurious = run.interactions.iter().filter(|r| r.triggered && r.spurious).count();

        println!(
            "{:<8} {:>6} {:>7} {:>6} {:>7} {:>12} {:>14}",
            w.name,
            counts.taps,
            counts.swipes,
            counts.keys,
            counts.total(),
            actual,
            spurious
        );
        if ds != Dataset::Day24h {
            totals.0 += counts.taps;
            totals.1 += counts.swipes;
            totals.2 += counts.total();
            totals.3 += actual;
        }
    }
    rule(72);
    println!(
        "{:<8} {:>6.1} {:>7.1} {:>6} {:>7.1} {:>12.1}",
        "average",
        totals.0 as f64 / 5.0,
        totals.1 as f64 / 5.0,
        "",
        totals.2 as f64 / 5.0,
        totals.3 as f64 / 5.0,
    );
    println!("\n(paper event counts: 68, 149, 76, 114, 83, average 98, 24 hour 218)");
}
