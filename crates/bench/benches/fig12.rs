//! Figure 12 — user irritation (left) and energy normalised to the oracle
//! (right) for every frequency configuration of Dataset 02, including the
//! governor-only inset of the irritation plot.

use interlag_bench::{banner, reps, rule, run_study};
use interlag_workloads::datasets::Dataset;

fn main() {
    let (_, study) = run_study(Dataset::D02, reps());

    banner(
        "FIGURE 12 (left) — user irritation, Dataset 02",
        "total seconds of irritation; thresholds at 110 % of the fastest frequency",
    );
    println!("{:<16} {:>14}", "config", "irritation (s)");
    rule(32);
    for c in study.all_configs() {
        println!("{:<16} {:>14.2}", c.name, c.mean_irritation().as_secs_f64());
    }

    banner(
        "FIGURE 12 (left, inset) — governors only",
        "(paper: conservative 47.43, interactive 0.69, ondemand 0.23, oracle 0.00)",
    );
    for name in ["conservative", "interactive", "ondemand", "oracle"] {
        let c = study.config(name).expect("study config");
        println!("{:<16} {:>10.2}", name, c.mean_irritation().as_secs_f64());
    }

    banner(
        "FIGURE 12 (right) — energy normalised to the oracle, Dataset 02",
        "(paper labels: 0.96 GHz most efficient at 0.85; 2.15 GHz at 1.47; \
         conservative 0.90, interactive 1.24, ondemand 1.22)",
    );
    println!("{:<16} {:>11} {:>10}", "config", "energy (J)", "vs oracle");
    rule(40);
    let mut best_fixed = ("", f64::INFINITY);
    for c in study.all_configs() {
        let norm = study.energy_normalised(c);
        if c.freq.is_some() && norm < best_fixed.1 {
            best_fixed = (c.name.as_str(), norm);
        }
        println!("{:<16} {:>11.2} {:>9.2}x", c.name, c.mean_energy_mj() / 1_000.0, norm);
    }
    println!(
        "\nmost energy-efficient fixed frequency: {} at {:.2}x oracle \
         (paper: 0.96 GHz)",
        best_fixed.0, best_fixed.1
    );
    assert_eq!(best_fixed.0, "fixed-0.96 GHz", "race-to-idle optimum must be 0.96 GHz");
    let cons = study.energy_normalised(study.config("conservative").expect("present"));
    let ond = study.energy_normalised(study.config("ondemand").expect("present"));
    assert!(cons < 1.05, "conservative near or below the oracle (got {cons:.2})");
    assert!(ond > 1.1, "ondemand clearly above the oracle (got {ond:.2})");
    println!("shape checks (0.96 GHz optimum, conservative <= oracle < ondemand): OK");
}
