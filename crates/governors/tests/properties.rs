//! Property-based tests of the governor implementations: whatever load
//! sequence arrives, every policy must stay on the OPP table, respect its
//! own invariants, and remain deterministic.

use proptest::prelude::*;

use interlag_device::dvfs::{FixedGovernor, Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_governors::plan::{FrequencyPlan, PlanGovernor};
use interlag_governors::{Conservative, Interactive, Ondemand, Schedutil};
use interlag_power::opp::OppTable;

fn arb_loads() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=100, 1..120)
}

fn drive(gov: &mut dyn Governor, loads: &[u8], table: &OppTable) -> Vec<u32> {
    gov.init(table);
    let period = gov.sample_period();
    let mut now = SimTime::ZERO;
    loads
        .iter()
        .map(|&pct| {
            now += period;
            let sample = LoadSample { busy: period * pct as u64 / 100, window: period };
            gov.on_sample(now, sample, table).as_khz()
        })
        .collect()
}

/// Fresh instances of the four kernel governor models, one constructor
/// per policy so each property can build as many independent copies as
/// it needs.
type GovernorCtor = fn(&OppTable) -> Box<dyn Governor>;

const KERNEL_GOVERNORS: [GovernorCtor; 4] = [
    |_| Box::new(Ondemand::default()),
    |_| Box::new(Conservative::default()),
    |t| Box::new(Interactive::for_table(t)),
    |_| Box::new(Schedutil::default()),
];

/// The frequency a fresh `gov` settles on after `n` samples of constant
/// `pct` load — long enough for every policy's ramps, dwell timers and
/// rate limits to converge.
fn steady_state(gov: &mut dyn Governor, pct: u8, n: usize, table: &OppTable) -> u32 {
    let loads = vec![pct; n];
    *drive(gov, &loads, table).last().expect("at least one sample")
}

proptest! {
    /// Every governor's every decision is an exact OPP-table frequency.
    #[test]
    fn decisions_stay_on_the_opp_table(loads in arb_loads()) {
        let table = OppTable::snapdragon_8074();
        let valid: Vec<u32> = table.frequencies().map(|f| f.as_khz()).collect();
        let mut governors: Vec<Box<dyn Governor>> = vec![
            Box::new(Ondemand::default()),
            Box::new(Conservative::default()),
            Box::new(Interactive::for_table(&table)),
            Box::new(Schedutil::default()),
            Box::new(FixedGovernor::new(table.min_freq())),
        ];
        for gov in governors.iter_mut() {
            for khz in drive(gov.as_mut(), &loads, &table) {
                prop_assert!(valid.contains(&khz), "{}: {khz} kHz off-table", gov.name());
            }
        }
    }

    /// Governors are pure functions of their input history: replaying the
    /// same loads yields the same decisions.
    #[test]
    fn decisions_are_deterministic(loads in arb_loads()) {
        let table = OppTable::snapdragon_8074();
        let mut a = Ondemand::default();
        let mut b = Ondemand::default();
        prop_assert_eq!(drive(&mut a, &loads, &table), drive(&mut b, &loads, &table));
        let mut a = Conservative::default();
        let mut b = Conservative::default();
        prop_assert_eq!(drive(&mut a, &loads, &table), drive(&mut b, &loads, &table));
    }

    /// Conservative never moves more than one 5 %-of-max step between
    /// consecutive samples (quantised outward to the neighbouring OPPs).
    #[test]
    fn conservative_steps_are_bounded(loads in arb_loads()) {
        let table = OppTable::snapdragon_8074();
        let mut gov = Conservative::default();
        let freqs = drive(&mut gov, &loads, &table);
        let step = table.max_freq().as_khz() as f64 * 0.05;
        // The *requested* frequency moves one step; the published
        // frequency quantises it onto the table (up when rising, down
        // when falling), so one sample can hop across an OPP gap on each
        // side of the request. Bound: one step plus twice the widest gap.
        let widest_gap = table
            .opps()
            .windows(2)
            .map(|p| p[1].freq.as_khz() - p[0].freq.as_khz())
            .max()
            .expect("multiple OPPs") as f64;
        for pair in freqs.windows(2) {
            let delta = (pair[1] as f64 - pair[0] as f64).abs();
            prop_assert!(delta <= step + 2.0 * widest_gap, "jumped {delta} kHz");
        }
    }

    /// Under saturation ondemand reaches the maximum immediately and
    /// never leaves it while the load stays high.
    #[test]
    fn ondemand_pins_max_under_saturation(n in 1usize..50) {
        let table = OppTable::snapdragon_8074();
        let loads = vec![100u8; n];
        let mut gov = Ondemand::default();
        let freqs = drive(&mut gov, &loads, &table);
        prop_assert!(freqs.iter().all(|&f| f == table.max_freq().as_khz()));
    }

    /// Sustained load is answered monotonically: for every kernel
    /// governor, the steady-state frequency under a heavier constant load
    /// is never below the steady-state frequency under a lighter one —
    /// and both are valid table OPPs.
    #[test]
    fn sustained_load_response_is_monotone(a in 0u8..=100, b in 0u8..=100) {
        let table = OppTable::snapdragon_8074();
        let valid: Vec<u32> = table.frequencies().map(|f| f.as_khz()).collect();
        let (lighter, heavier) = if a <= b { (a, b) } else { (b, a) };
        for make in KERNEL_GOVERNORS {
            let mut gov = make(&table);
            let f_light = steady_state(gov.as_mut(), lighter, 300, &table);
            let mut gov = make(&table);
            let f_heavy = steady_state(gov.as_mut(), heavier, 300, &table);
            prop_assert!(valid.contains(&f_light), "{}: {f_light} kHz off-table", gov.name());
            prop_assert!(valid.contains(&f_heavy), "{}: {f_heavy} kHz off-table", gov.name());
            prop_assert!(
                f_light <= f_heavy,
                "{}: steady {f_light} kHz at {lighter}% load > {f_heavy} kHz at {heavier}%",
                gov.name()
            );
        }
    }

    /// After any burst of saturation, sustained idleness decays every
    /// kernel governor back to the table floor: ondemand immediately,
    /// conservative by 5 % steps, interactive after its dwell,
    /// schedutil as its utilisation estimate drains.
    #[test]
    fn idle_decay_reaches_the_floor(busy_len in 1usize..40) {
        let table = OppTable::snapdragon_8074();
        let mut loads = vec![100u8; busy_len];
        loads.extend(std::iter::repeat_n(0u8, 300));
        for make in KERNEL_GOVERNORS {
            let mut gov = make(&table);
            let freqs = drive(gov.as_mut(), &loads, &table);
            let last = *freqs.last().expect("non-empty load sequence");
            prop_assert_eq!(
                last,
                table.min_freq().as_khz(),
                "{}: idles at {} kHz, floor is {} kHz",
                gov.name(),
                last,
                table.min_freq().as_khz()
            );
        }
    }

    /// The plan governor follows an arbitrary plan exactly (quantised up
    /// to the table).
    #[test]
    fn plan_governor_follows_any_plan(
        steps in prop::collection::vec((0u64..60_000, 200_000u32..2_200_000), 0..20),
    ) {
        let table = OppTable::snapdragon_8074();
        let mut plan = FrequencyPlan::new(table.min_freq());
        for &(ms, khz) in &steps {
            plan.set_from(SimTime::from_millis(ms), interlag_power::opp::Frequency::from_khz(khz));
        }
        let mut gov = PlanGovernor::new("test-plan", plan.clone());
        gov.init(&table);
        let idle = LoadSample { busy: SimDuration::ZERO, window: SimDuration::from_millis(1) };
        for ms in (0..60_000).step_by(777) {
            let t = SimTime::from_millis(ms);
            let got = gov.on_sample(t, idle, &table);
            prop_assert_eq!(got, table.quantize_up(plan.freq_at(t)));
        }
    }
}
