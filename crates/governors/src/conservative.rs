//! The Conservative governor.
//!
//! Linux's gentle variant of Ondemand, the second of the paper's subjects:
//! instead of jumping to the maximum it climbs and descends in fixed-size
//! steps, dwelling on intermediate frequencies. The paper finds exactly the
//! consequence this design implies: lag durations (and user irritation) are
//! far higher than Ondemand's because the clock takes several sampling
//! windows to reach a useful speed — but the energy bill is lower, even
//! 8 % below the oracle on average, because the work ends up executed at
//! cheaper mid-table frequencies.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// Tunables of [`Conservative`]
/// (`/sys/devices/system/cpu/cpufreq/conservative`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConservativeTunables {
    /// Load percentage above which the clock steps up.
    pub up_threshold: f64,
    /// Load percentage below which the clock steps down.
    pub down_threshold: f64,
    /// Step size as a percentage of the maximum frequency.
    pub freq_step_pct: f64,
    /// Evaluation interval.
    pub sampling_rate: SimDuration,
}

impl Default for ConservativeTunables {
    fn default() -> Self {
        ConservativeTunables {
            up_threshold: 80.0,
            down_threshold: 20.0,
            freq_step_pct: 5.0,
            sampling_rate: SimDuration::from_millis(80),
        }
    }
}

/// The Conservative frequency governor.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::{Governor, LoadSample};
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_governors::conservative::Conservative;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut g = Conservative::default();
/// g.init(&table);
/// let window = SimDuration::from_millis(20);
/// let busy = LoadSample { busy: window, window };
/// // One saturated window only creeps one step up, not to the max.
/// let f = g.on_sample(SimTime::ZERO, busy, &table);
/// assert!(f > table.min_freq() && f < table.max_freq());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Conservative {
    tunables: ConservativeTunables,
    current: Frequency,
    /// Unquantised requested frequency, so repeated small steps
    /// accumulate the way the kernel's `requested_freq` does.
    requested_khz: f64,
}

impl Conservative {
    /// Creates the governor with explicit tunables.
    pub fn new(tunables: ConservativeTunables) -> Self {
        Conservative { tunables, current: Frequency::default(), requested_khz: 0.0 }
    }

    /// The active tunables.
    pub fn tunables(&self) -> &ConservativeTunables {
        &self.tunables
    }

    fn step_khz(&self, table: &OppTable) -> f64 {
        table.max_freq().as_khz() as f64 * self.tunables.freq_step_pct / 100.0
    }
}

impl Governor for Conservative {
    fn name(&self) -> &str {
        "conservative"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.current = table.min_freq();
        self.requested_khz = self.current.as_khz() as f64;
        self.current
    }

    fn sample_period(&self) -> SimDuration {
        self.tunables.sampling_rate
    }

    fn on_sample(&mut self, _now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let pct = load.load_percent();
        let (min, max) = (table.min_freq().as_khz() as f64, table.max_freq().as_khz() as f64);
        if pct > self.tunables.up_threshold {
            self.requested_khz = (self.requested_khz + self.step_khz(table)).min(max);
            // Rising: pick the lowest OPP that satisfies the request
            // (cpufreq's RELATION_L).
            self.current =
                table.quantize_up(Frequency::from_khz(self.requested_khz.round() as u32));
        } else if pct < self.tunables.down_threshold {
            self.requested_khz = (self.requested_khz - self.step_khz(table)).max(min);
            // Falling: pick the highest OPP not exceeding the request
            // (RELATION_H), otherwise small steps would round back up.
            self.current =
                table.highest_at_most(Frequency::from_khz(self.requested_khz.round() as u32));
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn load(pct: u64) -> LoadSample {
        LoadSample { busy: window() * pct / 100, window: window() }
    }

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    #[test]
    fn ramping_to_max_takes_many_windows() {
        let t = table();
        let mut g = Conservative::default();
        g.init(&t);
        let mut windows = 0;
        while g.on_sample(SimTime::ZERO, load(100), &t) < t.max_freq() {
            windows += 1;
            assert!(windows < 100, "never reached max");
        }
        // 5 % steps from 0.30 to 2.15 GHz: ((2150.4-300)/107.5) ≈ 18 windows.
        assert!((15..=20).contains(&windows), "took {windows} windows");
    }

    #[test]
    fn intermediate_load_holds_frequency() {
        let t = table();
        let mut g = Conservative::default();
        g.init(&t);
        g.on_sample(SimTime::ZERO, load(100), &t);
        let held = g.on_sample(SimTime::ZERO, load(50), &t);
        assert_eq!(g.on_sample(SimTime::ZERO, load(50), &t), held);
        assert_eq!(g.on_sample(SimTime::ZERO, load(79), &t), held);
        assert_eq!(g.on_sample(SimTime::ZERO, load(21), &t), held);
    }

    #[test]
    fn descends_stepwise_when_idle() {
        let t = table();
        let mut g = Conservative::default();
        g.init(&t);
        for _ in 0..25 {
            g.on_sample(SimTime::ZERO, load(100), &t);
        }
        let from_max = g.on_sample(SimTime::ZERO, load(0), &t);
        assert!(from_max < t.max_freq());
        assert!(from_max > t.min_freq(), "must not fall straight to min");
        let mut f = from_max;
        let mut windows = 1;
        while f > t.min_freq() {
            f = g.on_sample(SimTime::ZERO, load(0), &t);
            windows += 1;
            assert!(windows < 100);
        }
        assert!(windows >= 15, "descended in only {windows} windows");
    }

    #[test]
    fn requested_frequency_accumulates_across_quantization() {
        // Steps smaller than an OPP gap must still make progress.
        let t = table();
        let mut g = Conservative::new(ConservativeTunables {
            freq_step_pct: 2.0, // 43 MHz steps, smaller than most gaps
            ..Default::default()
        });
        g.init(&t);
        let mut f = t.min_freq();
        for _ in 0..60 {
            f = g.on_sample(SimTime::ZERO, load(100), &t);
        }
        assert_eq!(f, t.max_freq());
    }
}
