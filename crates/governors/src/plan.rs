//! Frequency plans and the trace-following governor.
//!
//! The paper's oracle is not an online policy: it is a frequency *trace*
//! composed offline from the fixed-frequency runs (§III-B), then evaluated
//! as if a governor had produced it. [`FrequencyPlan`] is that trace — a
//! step function from time to frequency — and [`PlanGovernor`] replays it
//! through the standard governor interface so the oracle runs through
//! exactly the same machinery as ondemand and friends.

use serde::{Deserialize, Serialize};

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// A step function from time to frequency.
///
/// # Examples
///
/// ```
/// use interlag_evdev::time::SimTime;
/// use interlag_governors::plan::FrequencyPlan;
/// use interlag_power::opp::Frequency;
///
/// let mut plan = FrequencyPlan::new(Frequency::from_mhz(960));
/// plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(2_150));
/// plan.set_from(SimTime::from_secs(2), Frequency::from_mhz(960));
/// assert_eq!(plan.freq_at(SimTime::from_millis(500)), Frequency::from_mhz(960));
/// assert_eq!(plan.freq_at(SimTime::from_millis(1_500)), Frequency::from_mhz(2_150));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyPlan {
    initial: Frequency,
    /// Change points, strictly increasing in time.
    steps: Vec<(SimTime, Frequency)>,
}

impl FrequencyPlan {
    /// Creates a plan that runs at `initial` forever.
    pub fn new(initial: Frequency) -> Self {
        FrequencyPlan { initial, steps: Vec::new() }
    }

    /// Sets the frequency from `time` onwards (until the next later step).
    ///
    /// Steps may be added in any order; a second step at the same instant
    /// replaces the first.
    pub fn set_from(&mut self, time: SimTime, freq: Frequency) {
        match self.steps.binary_search_by_key(&time, |(t, _)| *t) {
            Ok(i) => self.steps[i].1 = freq,
            Err(i) => self.steps.insert(i, (time, freq)),
        }
    }

    /// The frequency the plan prescribes at `time`.
    pub fn freq_at(&self, time: SimTime) -> Frequency {
        match self.steps.partition_point(|(t, _)| *t <= time) {
            0 => self.initial,
            i => self.steps[i - 1].1,
        }
    }

    /// The change points.
    pub fn steps(&self) -> &[(SimTime, Frequency)] {
        &self.steps
    }

    /// Removes steps that do not change the frequency.
    pub fn simplify(&mut self) {
        let mut current = self.initial;
        self.steps.retain(|(_, f)| {
            let keep = *f != current;
            if keep {
                current = *f;
            }
            keep
        });
    }

    /// Samples the plan on a regular grid — handy for plotting Figure 3.
    pub fn sample(
        &self,
        from: SimTime,
        to: SimTime,
        step: SimDuration,
    ) -> Vec<(SimTime, Frequency)> {
        assert!(!step.is_zero(), "sampling step must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t <= to {
            out.push((t, self.freq_at(t)));
            t += step;
        }
        out
    }
}

/// Replays a [`FrequencyPlan`] through the governor interface.
#[derive(Debug, Clone)]
pub struct PlanGovernor {
    plan: FrequencyPlan,
    name: String,
    period: SimDuration,
}

impl PlanGovernor {
    /// Creates a governor following `plan`, reporting as `name` (the
    /// experiments use `"oracle"`).
    pub fn new(name: impl Into<String>, plan: FrequencyPlan) -> Self {
        PlanGovernor { plan, name: name.into(), period: SimDuration::from_millis(1) }
    }

    /// The plan being followed.
    pub fn plan(&self) -> &FrequencyPlan {
        &self.plan
    }
}

impl Governor for PlanGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        table.quantize_up(self.plan.freq_at(SimTime::ZERO))
    }

    fn sample_period(&self) -> SimDuration {
        self.period
    }

    fn on_sample(&mut self, now: SimTime, _load: LoadSample, table: &OppTable) -> Frequency {
        table.quantize_up(self.plan.freq_at(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_order_insertion_sorts() {
        let mut plan = FrequencyPlan::new(Frequency::from_mhz(300));
        plan.set_from(SimTime::from_secs(2), Frequency::from_mhz(960));
        plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(2_150));
        assert_eq!(plan.freq_at(SimTime::from_millis(1_500)), Frequency::from_mhz(2_150));
        assert_eq!(plan.freq_at(SimTime::from_secs(3)), Frequency::from_mhz(960));
    }

    #[test]
    fn same_instant_overwrites() {
        let mut plan = FrequencyPlan::new(Frequency::from_mhz(300));
        plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(960));
        plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(2_150));
        assert_eq!(plan.steps().len(), 1);
        assert_eq!(plan.freq_at(SimTime::from_secs(1)), Frequency::from_mhz(2_150));
    }

    #[test]
    fn simplify_drops_redundant_steps() {
        let mut plan = FrequencyPlan::new(Frequency::from_mhz(300));
        plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(300)); // no-op
        plan.set_from(SimTime::from_secs(2), Frequency::from_mhz(960));
        plan.set_from(SimTime::from_secs(3), Frequency::from_mhz(960)); // no-op
        plan.simplify();
        assert_eq!(plan.steps().len(), 1);
    }

    #[test]
    fn sample_grid() {
        let mut plan = FrequencyPlan::new(Frequency::from_mhz(300));
        plan.set_from(SimTime::from_secs(1), Frequency::from_mhz(960));
        let pts = plan.sample(SimTime::ZERO, SimTime::from_secs(2), SimDuration::from_millis(500));
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[1].1, Frequency::from_mhz(300));
        assert_eq!(pts[2].1, Frequency::from_mhz(960));
    }

    #[test]
    fn governor_follows_plan() {
        let table = OppTable::snapdragon_8074();
        let mut plan = FrequencyPlan::new(table.min_freq());
        plan.set_from(SimTime::from_millis(100), table.max_freq());
        let mut g = PlanGovernor::new("oracle", plan);
        assert_eq!(g.init(&table), table.min_freq());
        let idle = LoadSample { busy: SimDuration::ZERO, window: SimDuration::from_millis(5) };
        assert_eq!(g.on_sample(SimTime::from_millis(50), idle, &table), table.min_freq());
        assert_eq!(g.on_sample(SimTime::from_millis(100), idle, &table), table.max_freq());
        assert_eq!(g.name(), "oracle");
    }
}
