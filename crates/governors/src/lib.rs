//! # interlag-governors — the DVFS policies under study
//!
//! Implementations of the frequency governors characterised by *Seeker et
//! al., IISWC 2014*, plugging into the
//! [`Governor`](interlag_device::dvfs::Governor) hook of the simulated
//! device:
//!
//! * [`ondemand`] — jump-to-max on high load, proportional descent;
//! * [`conservative`] — stepwise ramping through intermediate points;
//! * [`interactive`] — Android's default, with its input-event boost;
//! * [`schedutil`] — the post-paper utilisation-driven default, included
//!   as an extension to ask whether later governors closed the gap;
//! * [`simple`] — the trivial `performance` / `powersave` policies;
//! * [`plan`] — frequency plans and the trace-following governor the
//!   oracle is evaluated through.
//!
//! # Examples
//!
//! The three study governors react very differently to the same saturated
//! window:
//!
//! ```
//! use interlag_device::dvfs::{Governor, LoadSample};
//! use interlag_evdev::time::{SimDuration, SimTime};
//! use interlag_governors::{Conservative, Interactive, Ondemand};
//! use interlag_power::opp::OppTable;
//!
//! let table = OppTable::snapdragon_8074();
//! let window = SimDuration::from_millis(20);
//! let saturated = LoadSample { busy: window, window };
//!
//! let mut ondemand = Ondemand::default();
//! ondemand.init(&table);
//! assert_eq!(ondemand.on_sample(SimTime::ZERO, saturated, &table), table.max_freq());
//!
//! let mut conservative = Conservative::default();
//! conservative.init(&table);
//! assert!(conservative.on_sample(SimTime::ZERO, saturated, &table) < table.max_freq());
//!
//! let mut interactive = Interactive::for_table(&table);
//! interactive.init(&table);
//! let f = interactive.on_sample(SimTime::ZERO, saturated, &table);
//! assert!(f >= interactive.tunables().hispeed_freq);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conservative;
pub mod interactive;
pub mod ondemand;
pub mod plan;
pub mod schedutil;
pub mod simple;

pub use conservative::{Conservative, ConservativeTunables};
pub use interactive::{Interactive, InteractiveTunables};
pub use ondemand::{Ondemand, OndemandTunables};
pub use plan::{FrequencyPlan, PlanGovernor};
pub use schedutil::{Schedutil, SchedutilTunables};
pub use simple::{Performance, Powersave};
