//! The Interactive governor.
//!
//! Android's default policy at the time of the paper and its third
//! subject. Two features distinguish it from Ondemand (§III-B): it reacts
//! **directly to input events**, ramping to `hispeed_freq` the moment the
//! user touches the screen regardless of load, and it holds a raised
//! frequency for at least `min_sample_time` before letting it fall, so a
//! burst of rendering does not collapse the clock mid-gesture.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// Tunables of [`Interactive`]
/// (`/sys/devices/system/cpu/cpufreq/interactive`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractiveTunables {
    /// Frequency the governor jumps to on input or high load.
    pub hispeed_freq: Frequency,
    /// Load percentage that forces at least `hispeed_freq`.
    pub go_hispeed_load: f64,
    /// Load percentage the governor steers towards when scaling.
    pub target_load: f64,
    /// Minimum dwell time before the frequency may fall.
    pub min_sample_time: SimDuration,
    /// Evaluation interval (`timer_rate`).
    pub timer_rate: SimDuration,
    /// Whether touching the screen boosts the clock (the governor's
    /// signature feature; the ablation bench switches it off).
    pub input_boost: bool,
}

impl InteractiveTunables {
    /// Defaults matching a Nexus-class `interactive` configuration on the
    /// Snapdragon table: hispeed at 1.19 GHz.
    pub fn for_table(table: &OppTable) -> Self {
        InteractiveTunables {
            hispeed_freq: table.quantize_up(Frequency::from_mhz(1_190)),
            go_hispeed_load: 85.0,
            target_load: 90.0,
            min_sample_time: SimDuration::from_millis(80),
            timer_rate: SimDuration::from_millis(20),
            input_boost: true,
        }
    }
}

/// The Interactive frequency governor.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::Governor;
/// use interlag_evdev::time::SimTime;
/// use interlag_governors::interactive::Interactive;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut g = Interactive::for_table(&table);
/// g.init(&table);
/// // A touch boosts the clock with no load at all.
/// let boosted = g.on_input(SimTime::from_millis(5), &table).unwrap();
/// assert_eq!(boosted, g.tunables().hispeed_freq);
/// ```
#[derive(Debug, Clone)]
pub struct Interactive {
    tunables: InteractiveTunables,
    current: Frequency,
    /// The frequency floor and when it was last raised.
    floor: Frequency,
    floor_set_at: SimTime,
}

impl Interactive {
    /// Creates the governor with explicit tunables.
    pub fn new(tunables: InteractiveTunables) -> Self {
        Interactive {
            tunables,
            current: Frequency::default(),
            floor: Frequency::default(),
            floor_set_at: SimTime::ZERO,
        }
    }

    /// Creates the governor with defaults fitted to `table`.
    pub fn for_table(table: &OppTable) -> Self {
        Interactive::new(InteractiveTunables::for_table(table))
    }

    /// The active tunables.
    pub fn tunables(&self) -> &InteractiveTunables {
        &self.tunables
    }

    fn raise_floor(&mut self, freq: Frequency, now: SimTime) {
        self.floor = freq;
        self.floor_set_at = now;
    }
}

impl Governor for Interactive {
    fn name(&self) -> &str {
        "interactive"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.current = table.min_freq();
        self.floor = table.min_freq();
        self.floor_set_at = SimTime::ZERO;
        self.current
    }

    fn sample_period(&self) -> SimDuration {
        self.tunables.timer_rate
    }

    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let pct = load.load_percent();

        // Steer towards target_load: the frequency at which the observed
        // work would have produced exactly target_load.
        let mut target_mhz = self.current.as_mhz() * pct / self.tunables.target_load;
        if pct >= self.tunables.go_hispeed_load {
            target_mhz = target_mhz.max(self.tunables.hispeed_freq.as_mhz());
        }
        let mut target =
            table.quantize_up(Frequency::from_khz((target_mhz * 1_000.0).ceil() as u32));

        // Respect the dwell floor.
        let floor_expired =
            now.saturating_since(self.floor_set_at) >= self.tunables.min_sample_time;
        if !floor_expired {
            target = target.max(self.floor);
        }

        if target > self.current {
            self.raise_floor(target, now);
        }
        self.current = target.max(table.min_freq());
        self.current
    }

    fn on_input(&mut self, now: SimTime, table: &OppTable) -> Option<Frequency> {
        if !self.tunables.input_boost {
            return None;
        }
        let boosted = table.quantize_up(self.tunables.hispeed_freq);
        if boosted > self.current {
            self.current = boosted;
        }
        // Touching again re-arms the dwell window either way.
        self.raise_floor(self.current.max(boosted), now);
        Some(self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn load(pct: u64) -> LoadSample {
        LoadSample { busy: window() * pct / 100, window: window() }
    }

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    #[test]
    fn input_boost_without_any_load() {
        let t = table();
        let mut g = Interactive::for_table(&t);
        g.init(&t);
        let f = g.on_input(SimTime::from_millis(1), &t).unwrap();
        assert_eq!(f, g.tunables().hispeed_freq);
    }

    #[test]
    fn boost_holds_for_min_sample_time() {
        let t = table();
        let mut g = Interactive::for_table(&t);
        g.init(&t);
        g.on_input(SimTime::from_millis(0), &t);
        // 20 ms later, zero load: floor still holds.
        let f = g.on_sample(SimTime::from_millis(20), load(0), &t);
        assert_eq!(f, g.tunables().hispeed_freq);
        let f = g.on_sample(SimTime::from_millis(60), load(0), &t);
        assert_eq!(f, g.tunables().hispeed_freq);
        // After 80 ms the floor expires and the clock collapses.
        let f = g.on_sample(SimTime::from_millis(81), load(0), &t);
        assert_eq!(f, t.min_freq());
    }

    #[test]
    fn high_load_goes_to_at_least_hispeed() {
        let t = table();
        let mut g = Interactive::for_table(&t);
        g.init(&t);
        let f = g.on_sample(SimTime::from_millis(20), load(90), &t);
        assert!(f >= g.tunables().hispeed_freq);
    }

    #[test]
    fn sustained_saturation_reaches_max() {
        let t = table();
        let mut g = Interactive::for_table(&t);
        g.init(&t);
        let mut f = t.min_freq();
        for i in 1..=20 {
            f = g.on_sample(SimTime::from_millis(20 * i), load(100), &t);
        }
        assert_eq!(f, t.max_freq());
    }

    #[test]
    fn disabled_input_boost_ignores_touches() {
        let t = table();
        let mut tun = InteractiveTunables::for_table(&t);
        tun.input_boost = false;
        let mut g = Interactive::new(tun);
        g.init(&t);
        assert_eq!(g.on_input(SimTime::from_millis(1), &t), None);
    }

    #[test]
    fn moderate_load_scales_proportionally_without_hispeed() {
        let t = table();
        let mut g = Interactive::for_table(&t);
        g.init(&t);
        // From min frequency with 50 % load the target stays low.
        let f = g.on_sample(SimTime::from_millis(20), load(50), &t);
        assert!(f <= Frequency::from_khz(422_400), "got {f}");
    }
}
