//! The Ondemand governor.
//!
//! Linux's classic load-driven policy (and one of the paper's three
//! subjects): when the load over the last sampling window exceeds
//! `up_threshold` the clock jumps **straight to the maximum**; otherwise
//! the next frequency is chosen proportional to the observed load. The
//! jump-to-max behaviour is exactly the paper's "issue 2": during an
//! interaction lag Ondemand overshoots, raising the frequency higher than
//! the user needs. A `sampling_down_factor` keeps it at the top for a few
//! windows before re-evaluating downwards, as in the kernel.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// Tunables of [`Ondemand`] (`/sys/devices/system/cpu/cpufreq/ondemand`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OndemandTunables {
    /// Load percentage above which the clock jumps to maximum.
    pub up_threshold: f64,
    /// Evaluation interval.
    pub sampling_rate: SimDuration,
    /// After a jump to maximum, skip this many windows before the
    /// frequency is allowed to fall again.
    pub sampling_down_factor: u32,
}

impl Default for OndemandTunables {
    fn default() -> Self {
        OndemandTunables {
            up_threshold: 95.0,
            sampling_rate: SimDuration::from_millis(20),
            sampling_down_factor: 2,
        }
    }
}

/// The Ondemand frequency governor.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::{Governor, LoadSample};
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_governors::ondemand::Ondemand;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut g = Ondemand::default();
/// g.init(&table);
/// let window = SimDuration::from_millis(20);
/// let saturated = LoadSample { busy: window, window };
/// assert_eq!(g.on_sample(SimTime::ZERO, saturated, &table), table.max_freq());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ondemand {
    tunables: OndemandTunables,
    current: Frequency,
    down_skip: u32,
}

impl Ondemand {
    /// Creates the governor with explicit tunables.
    pub fn new(tunables: OndemandTunables) -> Self {
        Ondemand { tunables, current: Frequency::default(), down_skip: 0 }
    }

    /// The active tunables.
    pub fn tunables(&self) -> &OndemandTunables {
        &self.tunables
    }
}

impl Governor for Ondemand {
    fn name(&self) -> &str {
        "ondemand"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.current = table.min_freq();
        self.down_skip = 0;
        self.current
    }

    fn sample_period(&self) -> SimDuration {
        self.tunables.sampling_rate
    }

    fn on_sample(&mut self, _now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let pct = load.load_percent();
        if pct > self.tunables.up_threshold {
            self.current = table.max_freq();
            self.down_skip = self.tunables.sampling_down_factor;
            return self.current;
        }
        if self.down_skip > 0 {
            self.down_skip -= 1;
            return self.current;
        }
        // Proportional descent: pick the lowest frequency that could have
        // carried the observed load below the threshold.
        let target_mhz = table.max_freq().as_mhz() * pct / 100.0;
        let target = Frequency::from_khz((target_mhz * 1_000.0).ceil() as u32);
        self.current = table.quantize_up(target.max(table.min_freq()));
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> SimDuration {
        SimDuration::from_millis(20)
    }

    fn load(pct: u64) -> LoadSample {
        LoadSample { busy: window() * pct / 100, window: window() }
    }

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    #[test]
    fn saturation_jumps_straight_to_max() {
        let t = table();
        let mut g = Ondemand::default();
        assert_eq!(g.init(&t), t.min_freq());
        assert_eq!(g.on_sample(SimTime::ZERO, load(100), &t), t.max_freq());
    }

    #[test]
    fn idle_falls_to_min_after_down_factor() {
        let t = table();
        let mut g = Ondemand::default();
        g.init(&t);
        g.on_sample(SimTime::ZERO, load(100), &t);
        // Two skipped windows (sampling_down_factor = 2)…
        assert_eq!(g.on_sample(SimTime::ZERO, load(0), &t), t.max_freq());
        assert_eq!(g.on_sample(SimTime::ZERO, load(0), &t), t.max_freq());
        // …then straight down.
        assert_eq!(g.on_sample(SimTime::ZERO, load(0), &t), t.min_freq());
    }

    #[test]
    fn moderate_load_is_proportional() {
        let t = table();
        let mut g = Ondemand::default();
        g.init(&t);
        let f = g.on_sample(SimTime::ZERO, load(50), &t);
        // 50 % of 2.15 GHz ≈ 1.08 GHz → next point up is 1.19 GHz.
        assert_eq!(f, Frequency::from_khz(1_190_400));
        let f = g.on_sample(SimTime::ZERO, load(10), &t);
        assert_eq!(f, Frequency::from_khz(300_000));
    }

    #[test]
    fn below_threshold_takes_the_proportional_path() {
        let t = table();
        let mut g = Ondemand::default();
        g.init(&t);
        // 88 % load: below the 95 % threshold, so no jump — the
        // proportional target is 0.88 × 2.15 GHz ≈ 1.89 GHz → 1.96 GHz.
        let f = g.on_sample(SimTime::ZERO, load(88), &t);
        assert_eq!(f, Frequency::from_khz(1_958_400));
        assert!(f < t.max_freq());
    }
}
