//! The trivial kernel policies: Performance and Powersave.
//!
//! Not studied by the paper directly, but Performance is the baseline the
//! 47 %-savings headline compares against ("permanently running the CPU at
//! the highest frequency"), and Powersave bounds the other end.

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// Pins the clock to the fastest operating point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Performance;

impl Governor for Performance {
    fn name(&self) -> &str {
        "performance"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        table.max_freq()
    }

    fn sample_period(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }

    fn on_sample(&mut self, _now: SimTime, _load: LoadSample, table: &OppTable) -> Frequency {
        table.max_freq()
    }
}

/// Pins the clock to the slowest operating point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Powersave;

impl Governor for Powersave {
    fn name(&self) -> &str {
        "powersave"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        table.min_freq()
    }

    fn sample_period(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }

    fn on_sample(&mut self, _now: SimTime, _load: LoadSample, table: &OppTable) -> Frequency {
        table.min_freq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_always_max() {
        let t = OppTable::snapdragon_8074();
        let mut g = Performance;
        assert_eq!(g.init(&t), t.max_freq());
        let idle = LoadSample { busy: SimDuration::ZERO, window: SimDuration::from_millis(20) };
        assert_eq!(g.on_sample(SimTime::ZERO, idle, &t), t.max_freq());
        assert_eq!(g.name(), "performance");
    }

    #[test]
    fn powersave_always_min() {
        let t = OppTable::snapdragon_8074();
        let mut g = Powersave;
        assert_eq!(g.init(&t), t.min_freq());
        let w = SimDuration::from_millis(20);
        let full = LoadSample { busy: w, window: w };
        assert_eq!(g.on_sample(SimTime::ZERO, full, &t), t.min_freq());
    }
}
