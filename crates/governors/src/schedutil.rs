//! The Schedutil governor — a post-paper extension.
//!
//! Schedutil replaced Interactive as Android's default years after the
//! study: it picks `f = headroom × f_max × utilisation` directly from
//! scheduler utilisation instead of thresholds, optionally boosted on
//! input. Including it answers the natural follow-up to the paper — *did
//! later governors close the gap to the oracle?* — with the same
//! methodology (see the `headline` bench).

use interlag_device::dvfs::{Governor, LoadSample};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::{Frequency, OppTable};

/// Tunables of [`Schedutil`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedutilTunables {
    /// Headroom factor applied to the utilisation estimate (the kernel
    /// uses 1.25: "go 25 % faster than strictly needed").
    pub headroom: f64,
    /// Exponential-decay weight of the utilisation estimate per window
    /// (the PELT-like memory; 0 = no memory, 1 = frozen).
    pub decay: f64,
    /// Evaluation interval.
    pub rate_limit: SimDuration,
    /// Down-scaling is rate-limited harder than up-scaling, as in the
    /// kernel: the frequency may only fall after this long at a lower
    /// utilisation.
    pub down_rate_limit: SimDuration,
}

impl Default for SchedutilTunables {
    fn default() -> Self {
        SchedutilTunables {
            headroom: 1.25,
            decay: 0.5,
            rate_limit: SimDuration::from_millis(10),
            down_rate_limit: SimDuration::from_millis(40),
        }
    }
}

/// The Schedutil frequency governor.
///
/// # Examples
///
/// ```
/// use interlag_device::dvfs::{Governor, LoadSample};
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_governors::schedutil::Schedutil;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let mut g = Schedutil::default();
/// g.init(&table);
/// let w = SimDuration::from_millis(10);
/// let half = LoadSample { busy: w / 2, window: w };
/// // 50 % util × 1.25 headroom → ~1.34 GHz target.
/// let f = g.on_sample(SimTime::from_millis(10), half, &table);
/// assert!(f > table.min_freq() && f < table.max_freq());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Schedutil {
    tunables: SchedutilTunables,
    util: f64,
    current: Frequency,
    last_decrease_ok: SimTime,
}

impl Schedutil {
    /// Creates the governor with explicit tunables.
    pub fn new(tunables: SchedutilTunables) -> Self {
        Schedutil { tunables, ..Default::default() }
    }

    /// The active tunables.
    pub fn tunables(&self) -> &SchedutilTunables {
        &self.tunables
    }
}

impl Governor for Schedutil {
    fn name(&self) -> &str {
        "schedutil"
    }

    fn init(&mut self, table: &OppTable) -> Frequency {
        self.util = 0.0;
        self.current = table.min_freq();
        self.last_decrease_ok = SimTime::ZERO;
        self.current
    }

    fn sample_period(&self) -> SimDuration {
        self.tunables.rate_limit
    }

    fn on_sample(&mut self, now: SimTime, load: LoadSample, table: &OppTable) -> Frequency {
        let instantaneous = (load.load_percent() / 100.0).clamp(0.0, 1.0);
        // PELT-ish memory: decays towards the instantaneous utilisation
        // but rises immediately (max), so bursts are not under-served.
        let decayed = self.tunables.decay * self.util + (1.0 - self.tunables.decay) * instantaneous;
        self.util = decayed.max(instantaneous);

        let target_mhz = self.tunables.headroom * table.max_freq().as_mhz() * self.util;
        let target = table.quantize_up(Frequency::from_khz((target_mhz * 1_000.0).ceil() as u32));

        if target >= self.current {
            self.current = target;
            self.last_decrease_ok = now + self.tunables.down_rate_limit;
        } else if now >= self.last_decrease_ok {
            self.current = target;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn load(pct: u64) -> LoadSample {
        LoadSample { busy: window() * pct / 100, window: window() }
    }

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    #[test]
    fn saturation_reaches_max_immediately() {
        let t = table();
        let mut g = Schedutil::default();
        g.init(&t);
        assert_eq!(g.on_sample(SimTime::from_millis(10), load(100), &t), t.max_freq());
    }

    #[test]
    fn headroom_over_provisions() {
        let t = table();
        let mut g = Schedutil::default();
        g.init(&t);
        // 60 % util → 1.25 × 0.6 × 2.15 GHz ≈ 1.61 GHz → 1.73 GHz point.
        let f = g.on_sample(SimTime::from_millis(10), load(60), &t);
        assert_eq!(f, Frequency::from_khz(1_728_000));
    }

    #[test]
    fn down_scaling_is_rate_limited() {
        let t = table();
        let mut g = Schedutil::default();
        g.init(&t);
        let f = g.on_sample(SimTime::from_millis(10), load(100), &t);
        assert_eq!(f, t.max_freq());
        // 10 ms later utilisation collapses — but the down rate limit
        // holds the frequency.
        let f = g.on_sample(SimTime::from_millis(20), load(0), &t);
        assert_eq!(f, t.max_freq());
        // After the down-rate window (40 ms past the raise), it may fall.
        let mut f = t.max_freq();
        for ms in [30u64, 40, 50, 60, 70, 80] {
            f = g.on_sample(SimTime::from_millis(ms), load(0), &t);
        }
        assert!(f < t.max_freq());
    }

    #[test]
    fn util_memory_keeps_frequency_above_the_instantaneous_target() {
        let t = table();
        let mut g = Schedutil::default();
        g.init(&t);
        g.on_sample(SimTime::from_millis(10), load(100), &t);
        // Load drops to 40 %: the decayed utilisation keeps the clock at
        // or above the pure 40 % target (1.25 x 0.4 x 2.15 GHz -> the
        // 1.19 GHz point) while it converges onto it.
        let mut freqs = Vec::new();
        for i in 1..=10 {
            freqs.push(g.on_sample(SimTime::from_millis(10 + 10 * i), load(40), &t));
        }
        assert!(
            freqs.iter().all(|f| *f >= Frequency::from_khz(1_190_400)),
            "never below the 40 % target while converging: {freqs:?}"
        );
        assert_eq!(*freqs.last().expect("ten samples"), Frequency::from_khz(1_190_400));
    }
}
