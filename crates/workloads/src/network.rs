//! Networking workloads and the deterministic proxy — the paper's §VI
//! future work, implemented.
//!
//! *"In its current state we are not considering networking workloads
//! since they are heavily non deterministic. If the user, for example,
//! starts the browser and opens a news web page, it might look completely
//! different between different workload executions. One could circumvent
//! this problem by using a workload aware network proxy that creates a
//! deterministic environment for network accesses."*
//!
//! A [`NetworkCondition`] decides where a browsing session's page content
//! comes from: [`NetworkCondition::Live`] draws content (what the page
//! looks like) and response latency from a per-execution nonce — every
//! run sees different pages, exactly the situation that breaks the
//! matcher; [`NetworkCondition::Proxied`] replays the responses captured
//! at recording time, making the environment deterministic and the
//! annotation database valid across runs. The `proxy` bench quantifies
//! the difference.

use interlag_device::script::InteractionCategory;
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::SimDuration;

use crate::gen::{Workload, WorkloadBuilder, MCYCLES};

/// Where a networking workload's responses come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkCondition {
    /// The live network: content and latency differ per execution
    /// (`run_nonce` stands for "whatever the internet serves today").
    Live {
        /// Distinguishes one execution's network state from another's.
        run_nonce: u64,
    },
    /// A workload-aware proxy replaying the responses captured when the
    /// workload was recorded: content and latency are the recording's.
    Proxied,
}

impl NetworkCondition {
    fn content_rng(&self, recording_seed: u64) -> SplitMix64 {
        match self {
            // Live content mixes in the run nonce: different every run.
            NetworkCondition::Live { run_nonce } => {
                SplitMix64::new(recording_seed ^ run_nonce.rotate_left(17) ^ 0x0e7_f00d)
            }
            // The proxy serves the recorded responses.
            NetworkCondition::Proxied => SplitMix64::new(recording_seed ^ 0x0e7_f00d),
        }
    }
}

/// A news-browsing session: open the browser, load `pages` articles,
/// scroll each. The *interactions* (gesture positions and timings) are
/// identical across conditions — they come from the recorded trace — but
/// each page's rendered content and network latency come from the
/// [`NetworkCondition`].
///
/// # Examples
///
/// ```
/// use interlag_workloads::network::{news_browsing, NetworkCondition};
///
/// let recorded = news_browsing(7, 4, NetworkCondition::Proxied);
/// let replayed = news_browsing(7, 4, NetworkCondition::Proxied);
/// assert_eq!(recorded.script, replayed.script, "the proxy is deterministic");
///
/// let live_a = news_browsing(7, 4, NetworkCondition::Live { run_nonce: 1 });
/// let live_b = news_browsing(7, 4, NetworkCondition::Live { run_nonce: 2 });
/// assert_ne!(live_a.script, live_b.script, "the live network is not");
/// // Gesture timings are identical either way — only content differs.
/// let starts = |w: &interlag_workloads::gen::Workload| {
///     w.script.interactions.iter().map(|i| i.start).collect::<Vec<_>>()
/// };
/// assert_eq!(starts(&live_a), starts(&live_b));
/// ```
pub fn news_browsing(recording_seed: u64, pages: usize, condition: NetworkCondition) -> Workload {
    let mut content = condition.content_rng(recording_seed);
    // The builder's own seed drives only the user side (timings,
    // positions): identical across conditions.
    let mut b = WorkloadBuilder::new(recording_seed ^ 0xb04_53e5);

    b.app_launch_with_content(
        "open browser",
        500 * MCYCLES,
        6,
        InteractionCategory::Common,
        &mut content,
    );
    b.think_ms(3_000, 5_000);
    for p in 0..pages {
        // Live latency varies run to run; the proxy replays it.
        let latency = SimDuration::from_millis(content.next_range(150, 900) as u64);
        b.page_load(&format!("load article {p}"), 400 * MCYCLES, 5, latency, &mut content);
        b.think_ms(4_000, 7_000);
        b.scroll_with_content(&format!("scroll article {p}"), 120 * MCYCLES, &mut content);
        b.think_ms(3_000, 5_000);
    }
    let name = match condition {
        NetworkCondition::Live { .. } => "news-live",
        NetworkCondition::Proxied => "news-proxied",
    };
    b.build(name, "news browsing over the network")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxied_sessions_are_reproducible() {
        let a = news_browsing(42, 3, NetworkCondition::Proxied);
        let b = news_browsing(42, 3, NetworkCondition::Proxied);
        assert_eq!(a.script, b.script);
    }

    #[test]
    fn live_sessions_differ_in_content_only() {
        let a = news_browsing(42, 3, NetworkCondition::Live { run_nonce: 10 });
        let b = news_browsing(42, 3, NetworkCondition::Live { run_nonce: 11 });
        assert_ne!(a.script, b.script, "content must differ");
        assert_eq!(a.script.interactions.len(), b.script.interactions.len());
        for (x, y) in a.script.interactions.iter().zip(&b.script.interactions) {
            assert_eq!(x.start, y.start, "gesture timing is the user's, not the network's");
            assert_eq!(x.gesture, y.gesture);
            assert_eq!(x.widget, y.widget);
            // …but the responses (scenes, latencies) differ somewhere.
        }
        // The raw input traces are identical: replay replays.
        assert_eq!(a.script.record_trace(), b.script.record_trace());
    }

    #[test]
    fn proxied_equals_one_specific_live_state_never_another() {
        // The proxy replays the recorded responses; a live run with any
        // nonce virtually never reproduces them.
        let proxied = news_browsing(7, 3, NetworkCondition::Proxied);
        for nonce in 1..5 {
            let live = news_browsing(7, 3, NetworkCondition::Live { run_nonce: nonce });
            assert_ne!(proxied.script, live.script);
        }
    }
}
