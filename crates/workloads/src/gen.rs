//! The workload builder: composing realistic interactive sessions.
//!
//! The paper's datasets are ten-minute recordings of volunteers using real
//! apps (Table I). Here a [`WorkloadBuilder`] plays the volunteer: it walks
//! a seeded random session — think, tap, read, swipe, type — emitting both
//! halves of a recording at once: the gesture (which becomes the raw input
//! trace) and the app's scripted reaction (which becomes compute + screen
//! changes). Every quantity a human would vary (think time, tap position,
//! operation cost) is drawn from the builder's PRNG, so one seed is one
//! reproducible volunteer session.

use interlag_device::scene::{Element, Scene, SceneUpdate};
use interlag_device::script::{
    BackgroundWork, DeviceScript, InteractionCategory, InteractionSpec, PeriodicTick,
};
use interlag_device::task::{Phase, TaskSpec};
use interlag_evdev::gesture::{Gesture, HardKey};
use interlag_evdev::mt::Point;
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};

/// One million cycles; task demands read naturally in these units.
pub const MCYCLES: u64 = 1_000_000;

/// A fully generated workload: name, script, intended run length.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name ("01", "02", …, "24hour").
    pub name: String,
    /// Table I-style description of the session.
    pub description: String,
    /// The device-side script (apps' reactions).
    pub script: DeviceScript,
    /// Nominal recording length (runs get ~15 s of slack on top).
    pub duration: SimDuration,
}

impl Workload {
    /// The wall-clock time an execution of this workload should simulate:
    /// the recording plus slack for the last interaction to be serviced.
    pub fn run_until(&self) -> SimTime {
        SimTime::ZERO + self.duration + SimDuration::from_secs(15)
    }
}

/// Screen-body geometry the builder places widgets in (matches the default
/// [`ScreenConfig`](interlag_device::render::ScreenConfig)).
const BODY_X: (i32, i32) = (0, 72);
const BODY_Y: (i32, i32) = (6, 120);

/// Composes a [`Workload`] interaction by interaction.
///
/// # Examples
///
/// ```
/// use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};
/// use interlag_device::script::InteractionCategory;
///
/// let mut b = WorkloadBuilder::new(42);
/// b.app_launch("open gallery", 400 * MCYCLES, 8, InteractionCategory::Common);
/// b.think_ms(800, 2_000);
/// b.quick_tap("next image", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
/// let w = b.build("demo", "a short demo session");
/// assert_eq!(w.script.interactions.len(), 2);
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder {
    rng: SplitMix64,
    now: SimTime,
    interactions: Vec<InteractionSpec>,
    background: Vec<BackgroundWork>,
    tick: Option<PeriodicTick>,
    seed_counter: u64,
    /// The scene elements available for incremental updates, tracked so
    /// generated updates reference valid indices.
    current_elements: usize,
}

impl WorkloadBuilder {
    /// Starts a session. The first interaction cannot begin before 2 s
    /// (the paper resets the device to a known state and lets it settle).
    pub fn new(seed: u64) -> Self {
        WorkloadBuilder {
            rng: SplitMix64::new(seed),
            now: SimTime::from_secs(2),
            interactions: Vec::new(),
            background: Vec::new(),
            tick: Some(PeriodicTick { period: SimDuration::from_millis(80), cycles: 8 * MCYCLES }),
            seed_counter: seed.wrapping_mul(0x9e37_79b9) | 1,
            current_elements: 0,
        }
    }

    /// The session clock: when the next interaction will start.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Overrides the periodic system tick (pass `None` to disable).
    pub fn set_tick(&mut self, tick: Option<PeriodicTick>) -> &mut Self {
        self.tick = tick;
        self
    }

    /// Advances the clock by a uniform think time in `[lo_ms, hi_ms]`.
    pub fn think_ms(&mut self, lo_ms: u64, hi_ms: u64) -> &mut Self {
        let ms = self.rng.next_range(lo_ms as i64, hi_ms as i64) as u64;
        self.now += SimDuration::from_millis(ms);
        self
    }

    /// Jumps the clock forward to `t` (used by the 24-hour workload's
    /// long idle stretches).
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past.
    pub fn jump_to(&mut self, t: SimTime) -> &mut Self {
        assert!(t >= self.now, "cannot move the session clock backwards");
        self.now = t;
        self
    }

    fn fresh_seed(&mut self) -> u64 {
        self.seed_counter = self.seed_counter.wrapping_add(0x3779_6325_8d2f_11c5);
        self.seed_counter
    }

    fn random_widget(&mut self) -> (interlag_video::frame::Rect, Point) {
        let w = self.rng.next_range(12, 28) as u32;
        let h = self.rng.next_range(10, 22) as u32;
        let x = self.rng.next_range(BODY_X.0 as i64, (BODY_X.1 - w as i32 - 1) as i64) as u32;
        let y = self.rng.next_range(BODY_Y.0 as i64, (BODY_Y.1 - h as i32 - 1) as i64) as u32;
        let rect = interlag_video::frame::Rect::new(x, y, w, h);
        let px = self.rng.next_range((x + 1) as i64, (x + w - 2) as i64) as i32;
        let py = self.rng.next_range((y + 1) as i64, (y + h - 2) as i64) as i32;
        (rect, Point::new(px, py))
    }

    fn tap_gesture(&mut self, pos: Point) -> Gesture {
        let hold = self.rng.next_range(50, 120) as u64;
        Gesture::Tap { pos, hold: SimDuration::from_millis(hold) }
    }

    /// Jitter a demand by ±20 % so repeated operations are not identical.
    fn jitter(&mut self, cycles: u64) -> u64 {
        let pct = self.rng.next_range(-20, 20);
        (cycles as i64 + cycles as i64 * pct / 100).max(1) as u64
    }

    fn push_interaction(
        &mut self,
        label: &str,
        gesture: Gesture,
        widget: Option<interlag_video::frame::Rect>,
        response: Option<TaskSpec>,
        category: InteractionCategory,
    ) {
        let start = self.now;
        self.interactions.push(InteractionSpec {
            label: label.to_string(),
            start,
            gesture,
            widget,
            response,
            category,
        });
        // Hold the clock past the gesture itself so gestures never overlap.
        self.now += gesture.contact_duration() + SimDuration::from_millis(80);
    }

    /// Builds a multi-phase "app launch / page open" task: a new scene
    /// appears, then `phases` elements populate one by one — the
    /// progressive loading that gives the suggester its candidates.
    fn loading_task(&mut self, total_cycles: u64, phases: usize) -> TaskSpec {
        let phases = phases.max(1);
        let mut scene = Scene::new(self.fresh_seed());
        let cols = 3u32;
        for i in 0..phases as u32 {
            let x = 4 + (i % cols) * 22;
            let y = 10 + (i / cols) * 20;
            scene = scene.with_element(Element::hidden(
                interlag_video::frame::Rect::new(x, y.min(100), 18, 14),
                self.fresh_seed(),
            ));
        }
        self.current_elements = phases;

        // The scene switch costs half the work; the rest is spread over
        // the element loads with mild jitter. Launching and loading are
        // I/O-heavy on a phone (flash reads, network): each phase blocks
        // for a frequency-independent wait before its content appears —
        // this is why the oracle can service such lags at a mid-table
        // frequency (Figure 3).
        let switch_wait = SimDuration::from_millis(self.rng.next_range(150, 260) as u64);
        let mut spec =
            vec![Phase::with_wait(total_cycles / 2, switch_wait, SceneUpdate::replace(scene))];
        let per = (total_cycles / 2) / phases as u64;
        for i in 0..phases {
            let element_wait = SimDuration::from_millis(self.rng.next_range(40, 95) as u64);
            spec.push(Phase::with_wait(
                self.jitter(per.max(1)),
                element_wait,
                SceneUpdate::ShowElement(i),
            ));
        }
        TaskSpec::new(spec)
    }

    /// Like [`WorkloadBuilder::app_launch`] but with the response content
    /// (scene textures, per-phase network/flash waits) drawn from an
    /// external source — the network, live or proxied (§VI future work).
    /// The gesture itself still comes from the builder's user model.
    pub fn app_launch_with_content(
        &mut self,
        label: &str,
        total_cycles: u64,
        phases: usize,
        category: InteractionCategory,
        content: &mut SplitMix64,
    ) -> &mut Self {
        self.page_load_categorised(
            label,
            total_cycles,
            phases,
            SimDuration::ZERO,
            category,
            content,
        )
    }

    /// A network page load: tap a link, pay `latency` before the page
    /// skeleton appears, then populate `phases` elements whose look and
    /// pacing come from `content` (what the server responded).
    pub fn page_load(
        &mut self,
        label: &str,
        total_cycles: u64,
        phases: usize,
        latency: SimDuration,
        content: &mut SplitMix64,
    ) -> &mut Self {
        self.page_load_categorised(
            label,
            total_cycles,
            phases,
            latency,
            InteractionCategory::Common,
            content,
        )
    }

    fn page_load_categorised(
        &mut self,
        label: &str,
        total_cycles: u64,
        phases: usize,
        latency: SimDuration,
        category: InteractionCategory,
        content: &mut SplitMix64,
    ) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let phases = phases.max(1);
        let mut scene = Scene::new(content.next_u64());
        let cols = 3u32;
        for i in 0..phases as u32 {
            let x = 4 + (i % cols) * 22;
            let y = 10 + (i / cols) * 20;
            scene = scene.with_element(Element::hidden(
                interlag_video::frame::Rect::new(x, y.min(100), 18, 14),
                content.next_u64(),
            ));
        }
        let skeleton_wait = latency + SimDuration::from_millis(content.next_range(120, 240) as u64);
        let mut spec =
            vec![Phase::with_wait(total_cycles / 2, skeleton_wait, SceneUpdate::replace(scene))];
        let per = (total_cycles / 2) / phases as u64;
        for i in 0..phases {
            let element_wait = SimDuration::from_millis(content.next_range(40, 120) as u64);
            spec.push(Phase::with_wait(per.max(1), element_wait, SceneUpdate::ShowElement(i)));
        }
        let g = self.tap_gesture(pos);
        self.push_interaction(label, g, Some(rect), Some(TaskSpec::new(spec)), category);
        self
    }

    /// A scroll whose revealed content comes from an external source.
    pub fn scroll_with_content(
        &mut self,
        label: &str,
        cycles: u64,
        content: &mut SplitMix64,
    ) -> &mut Self {
        let x = self.rng.next_range(20, 52) as i32;
        let y0 = self.rng.next_range(80, 110) as i32;
        let y1 = self.rng.next_range(12, 40) as i32;
        let dur = self.rng.next_range(180, 400) as u64;
        let gesture = Gesture::Swipe {
            from: Point::new(x, y0),
            to: Point::new(x, y1),
            duration: SimDuration::from_millis(dur),
        };
        let widget = interlag_video::frame::Rect::new(0, 6, 72, 114);
        let scene = Scene::new(content.next_u64());
        self.push_interaction(
            label,
            gesture,
            Some(widget),
            Some(TaskSpec::single(cycles.max(1), SceneUpdate::replace(scene))),
            InteractionCategory::SimpleFrequent,
        );
        self
    }

    /// Tap a widget that opens a screen which loads progressively.
    pub fn app_launch(
        &mut self,
        label: &str,
        total_cycles: u64,
        phases: usize,
        category: InteractionCategory,
    ) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let cycles = self.jitter(total_cycles);
        let task = self.loading_task(cycles, phases);
        let g = self.tap_gesture(pos);
        self.push_interaction(label, g, Some(rect), Some(task), category);
        self
    }

    /// Tap a widget whose response is a single burst of work ending in a
    /// fresh screen (next photo, answer accepted, …).
    pub fn quick_tap(
        &mut self,
        label: &str,
        cycles: u64,
        category: InteractionCategory,
    ) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let cycles = self.jitter(cycles);
        let scene = Scene::new(self.fresh_seed());
        self.current_elements = 0;
        let g = self.tap_gesture(pos);
        self.push_interaction(
            label,
            g,
            Some(rect),
            Some(TaskSpec::single(cycles, SceneUpdate::replace(scene))),
            category,
        );
        self
    }

    /// A vertical swipe that scrolls to new content.
    pub fn scroll(&mut self, label: &str, cycles: u64, category: InteractionCategory) -> &mut Self {
        let x = self.rng.next_range(20, 52) as i32;
        let y0 = self.rng.next_range(80, 110) as i32;
        let y1 = self.rng.next_range(12, 40) as i32;
        let (from, to) = if self.rng.chance(0.8) {
            (Point::new(x, y0), Point::new(x, y1)) // scroll down
        } else {
            (Point::new(x, y1), Point::new(x, y0)) // scroll back up
        };
        let dur = self.rng.next_range(180, 400) as u64;
        let gesture = Gesture::Swipe { from, to, duration: SimDuration::from_millis(dur) };
        let cycles = self.jitter(cycles);
        let scene = Scene::new(self.fresh_seed());
        self.current_elements = 0;
        // The whole body is the scroll surface.
        let widget = interlag_video::frame::Rect::new(0, 6, 72, 114);
        self.push_interaction(
            label,
            gesture,
            Some(widget),
            Some(TaskSpec::single(cycles, SceneUpdate::replace(scene))),
            category,
        );
        self
    }

    /// A burst of on-screen keyboard input: the first tap opens the
    /// keyboard (cursor appears), each key echoes cheaply, category
    /// Typing throughout.
    pub fn typing_burst(&mut self, label: &str, keys: usize, per_key_cycles: u64) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let mut scene = Scene::new(self.fresh_seed()).with_cursor();
        scene = scene.with_element(Element::new(
            interlag_video::frame::Rect::new(8, 90, 56, 16),
            self.fresh_seed(),
        ));
        let open = self.jitter(per_key_cycles * 6);
        let g = self.tap_gesture(pos);
        self.push_interaction(
            label,
            g,
            Some(rect),
            Some(TaskSpec::single(open, SceneUpdate::replace(scene))),
            InteractionCategory::Typing,
        );
        for k in 0..keys {
            self.think_ms(180, 600);
            let (krect, kpos) = self.random_widget();
            let echo = self.jitter(per_key_cycles);
            // Each keystroke repaints the text field with new content.
            let update = SceneUpdate::replace(
                Scene::new(self.fresh_seed()).with_cursor().with_element(Element::new(
                    interlag_video::frame::Rect::new(8, 90, 56, 16),
                    self.fresh_seed(),
                )),
            );
            let g = self.tap_gesture(kpos);
            self.push_interaction(
                &format!("{label} key {k}"),
                g,
                Some(krect),
                Some(TaskSpec::single(echo, update)),
                InteractionCategory::Typing,
            );
        }
        self
    }

    /// A heavy operation with a transient progress screen: the progress
    /// element appears, work runs, the progress element disappears — the
    /// "ending looks like the beginning" case of §II-E that needs the
    /// matcher's occurrence counting.
    pub fn heavy_with_progress(
        &mut self,
        label: &str,
        cycles: u64,
        category: InteractionCategory,
    ) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let cycles = self.jitter(cycles);
        let base = Scene::new(self.fresh_seed());
        let mut with_progress = base.clone();
        with_progress.elements.push(Element::new(
            interlag_video::frame::Rect::new(16, 52, 40, 12),
            self.fresh_seed(),
        ));
        // Phase 1 (cheap): the progress dialog pops up and stays visible
        // for at least its animate-in time, so it is captured at every
        // frequency. Phase 2 (the real work): the dialog vanishes,
        // returning to the *same* screen — the matcher's occurrence-2 case.
        let dialog_in = SimDuration::from_millis(self.rng.next_range(160, 260) as u64);
        let spec = TaskSpec::new(vec![
            Phase::with_wait((cycles / 50).max(1), dialog_in, SceneUpdate::replace(with_progress)),
            Phase::new(cycles, SceneUpdate::replace(base.clone())),
        ]);
        // Make the post-interaction screen the base screen so the ending
        // image equals a frame that was already visible during the lag.
        let pre =
            TaskSpec::new(vec![Phase::new((cycles / 100).max(1), SceneUpdate::replace(base))]);
        let (prect, ppos) = self.random_widget();
        let g = self.tap_gesture(ppos);
        self.push_interaction(
            &format!("{label} (open)"),
            g,
            Some(prect),
            Some(pre),
            InteractionCategory::SimpleFrequent,
        );
        self.think_ms(700, 1_500);
        let g = self.tap_gesture(pos);
        self.push_interaction(label, g, Some(rect), Some(spec), category);
        self
    }

    /// A game session: a tap starts `duration` of continuous animation
    /// whose every frame costs `per_frame_cycles` of game simulation +
    /// draw work on the UI thread. When the core cannot deliver a frame
    /// per 100 ms the animation stutters — the Jank-type workload the
    /// paper's future work calls for (§VI). Ends on a distinct screen.
    pub fn game_session(
        &mut self,
        label: &str,
        duration: SimDuration,
        per_frame_cycles: u64,
    ) -> &mut Self {
        let (rect, pos) = self.random_widget();
        let game_scene =
            Scene::new(self.fresh_seed()).with_spinner().with_animation_load(per_frame_cycles);
        let end_scene = Scene::new(self.fresh_seed());
        let spec = TaskSpec::new(vec![
            // Entering the game is cheap; the cost is per frame.
            Phase::new(20 * MCYCLES, SceneUpdate::replace(game_scene)),
            // The session itself: the task blocks while the animation
            // runs (the game loop is modelled by the scene's per-frame
            // load), then the results screen appears.
            Phase::with_wait(MCYCLES, duration, SceneUpdate::replace(end_scene)),
        ]);
        let g = self.tap_gesture(pos);
        self.push_interaction(
            label,
            g,
            Some(rect),
            Some(spec),
            InteractionCategory::SimpleFrequent,
        );
        self.now += duration;
        self
    }

    /// A tap that misses every widget (or lands on dead UI): a spurious
    /// lag in the paper's Figure 10 classification.
    pub fn spurious_tap(&mut self, label: &str) -> &mut Self {
        let x = self.rng.next_range(BODY_X.0 as i64 + 2, BODY_X.1 as i64 - 2) as i32;
        let y = self.rng.next_range(BODY_Y.0 as i64 + 2, BODY_Y.1 as i64 - 2) as i32;
        let g = self.tap_gesture(Point::new(x, y));
        self.push_interaction(label, g, None, None, InteractionCategory::SimpleFrequent);
        self
    }

    /// A hardware key press (back/home) that triggers a screen change.
    pub fn key_press(&mut self, label: &str, key: HardKey, cycles: u64) -> &mut Self {
        let hold = self.rng.next_range(40, 90) as u64;
        let gesture = Gesture::Key { key, hold: SimDuration::from_millis(hold) };
        let cycles = self.jitter(cycles);
        let scene = Scene::new(self.fresh_seed());
        let widget = interlag_video::frame::Rect::new(0, 0, 72, 120);
        self.push_interaction(
            label,
            gesture,
            Some(widget),
            Some(TaskSpec::single(cycles, SceneUpdate::replace(scene))),
            InteractionCategory::SimpleFrequent,
        );
        self
    }

    /// Schedules a background burst (sync, prefetch) `offset` after the
    /// current session clock. Background work does not touch the screen.
    pub fn background_burst(&mut self, label: &str, offset: SimDuration, cycles: u64) -> &mut Self {
        let cycles = self.jitter(cycles);
        self.background.push(BackgroundWork {
            label: label.to_string(),
            start: self.now + offset,
            cycles,
        });
        self
    }

    /// Schedules a recurring background burst (periodic sync/prefetch)
    /// every `every` (with ±25 % jitter) from the session start until
    /// `span`. This is the load behind the paper's "issue 1": the
    /// governor raises the frequency for work the user is not waiting on.
    pub fn recurring_background(
        &mut self,
        label: &str,
        every: SimDuration,
        cycles: u64,
        span: SimDuration,
    ) -> &mut Self {
        let mut t = SimTime::from_secs(1);
        let end = SimTime::ZERO + span;
        let mut i = 0u32;
        while t < end {
            let c = self.jitter(cycles);
            self.background.push(BackgroundWork {
                label: format!("{label} #{i}"),
                start: t,
                cycles: c,
            });
            let q = every.as_micros() as i64;
            let jittered = (q + self.rng.next_range(-q / 4, q / 4)).max(1) as u64;
            t += SimDuration::from_micros(jittered);
            i += 1;
        }
        self
    }

    /// Finalises the workload.
    pub fn build(self, name: &str, description: &str) -> Workload {
        let duration = self
            .interactions
            .iter()
            .map(|i| i.start)
            .chain(self.background.iter().map(|b| b.start))
            .max()
            .unwrap_or(SimTime::ZERO)
            .saturating_since(SimTime::ZERO);
        let mut background = self.background;
        background.sort_by_key(|b| b.start);
        Workload {
            name: name.to_string(),
            description: description.to_string(),
            script: DeviceScript { interactions: self.interactions, background, tick: self.tick },
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic_per_seed() {
        let make = |seed| {
            let mut b = WorkloadBuilder::new(seed);
            b.app_launch("a", 300 * MCYCLES, 6, InteractionCategory::Common);
            b.think_ms(500, 1_500);
            b.quick_tap("b", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
            b.build("t", "test")
        };
        assert_eq!(make(1).script, make(1).script);
        assert_ne!(make(1).script, make(2).script);
    }

    #[test]
    fn interactions_are_chronological_and_non_overlapping() {
        let mut b = WorkloadBuilder::new(7);
        for i in 0..20 {
            b.quick_tap(&format!("t{i}"), 50 * MCYCLES, InteractionCategory::SimpleFrequent);
            b.think_ms(200, 900);
        }
        let w = b.build("t", "test");
        for pair in w.script.interactions.windows(2) {
            let end = pair[0].start + pair[0].gesture.contact_duration();
            assert!(pair[1].start > end, "gestures must not overlap");
        }
        // The recorded trace must parse/synthesise cleanly.
        let trace = w.script.record_trace();
        assert!(trace.len() > 20 * 8);
    }

    #[test]
    fn typing_burst_counts_keys_plus_opener() {
        let mut b = WorkloadBuilder::new(3);
        b.typing_burst("compose", 5, 8 * MCYCLES);
        let w = b.build("t", "test");
        assert_eq!(w.script.interactions.len(), 6);
        assert!(w.script.interactions.iter().all(|i| i.category == InteractionCategory::Typing));
    }

    #[test]
    fn heavy_with_progress_ends_on_the_pre_progress_screen() {
        let mut b = WorkloadBuilder::new(9);
        b.heavy_with_progress("save image", 2_000 * MCYCLES, InteractionCategory::Complex);
        let w = b.build("t", "test");
        let save = w.script.interactions.last().unwrap();
        let spec = save.response.as_ref().unwrap();
        assert_eq!(spec.phases().len(), 2);
        // Final update returns to the scene shown before the progress bar.
        let opener = &w.script.interactions[0];
        let opener_spec = opener.response.as_ref().unwrap();
        assert_eq!(
            spec.phases().last().unwrap().update,
            opener_spec.phases().last().unwrap().update
        );
    }

    #[test]
    fn spurious_taps_have_no_widget() {
        let mut b = WorkloadBuilder::new(11);
        b.spurious_tap("miss");
        let w = b.build("t", "test");
        assert!(w.script.interactions[0].is_spurious());
        assert_eq!(w.script.actual_lag_count(), 0);
    }

    #[test]
    fn duration_covers_background_work() {
        let mut b = WorkloadBuilder::new(13);
        b.quick_tap("a", MCYCLES, InteractionCategory::SimpleFrequent);
        b.background_burst("sync", SimDuration::from_secs(30), 100 * MCYCLES);
        let w = b.build("t", "test");
        assert!(w.duration >= SimDuration::from_secs(30));
        assert!(w.run_until() > SimTime::ZERO + w.duration);
    }
}
