//! The study's workloads: five ten-minute sessions plus the 24-hour
//! recording (Table I and Figure 10 of the paper).
//!
//! Each dataset reproduces the *kind* of session the corresponding
//! volunteer recorded — app mix, interaction density, tap/swipe balance
//! and the occasional mis-tap — with compute demands chosen so that lag
//! distributions land in the bands the paper reports (sub-second typical
//! lags, multi-second image saves at the lowest frequency).

use interlag_device::script::InteractionCategory::{Common, Complex, SimpleFrequent};
use interlag_evdev::gesture::HardKey;
use interlag_evdev::time::{SimDuration, SimTime};

use crate::gen::{Workload, WorkloadBuilder, MCYCLES};

/// The datasets of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Image manipulation with the Gallery application.
    D01,
    /// Logo Quiz game.
    D02,
    /// Pulse News widget and multimedia text messaging.
    D03,
    /// Movie Studio video creation.
    D04,
    /// Pulse News application.
    D05,
    /// The full-day recording used for the input-classification figure.
    Day24h,
    /// A ~25-second smoke dataset — two interactions and a background
    /// burst. Not part of the paper's study; exists so CLI tests, the CI
    /// durability job and quick local sanity checks can run a complete
    /// journalled study in seconds instead of minutes.
    Mini,
}

impl Dataset {
    /// The five ten-minute datasets of the governor study, in order.
    pub const TEN_MINUTE: [Dataset; 5] =
        [Dataset::D01, Dataset::D02, Dataset::D03, Dataset::D04, Dataset::D05];

    /// The dataset's name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::D01 => "01",
            Dataset::D02 => "02",
            Dataset::D03 => "03",
            Dataset::D04 => "04",
            Dataset::D05 => "05",
            Dataset::Day24h => "24hour",
            Dataset::Mini => "mini",
        }
    }

    /// The Table I description.
    pub fn description(self) -> &'static str {
        match self {
            Dataset::D01 => "Image manipulation with Gallery application.",
            Dataset::D02 => "Logo Quiz game.",
            Dataset::D03 => "Pulse News widget and multimedia text messaging.",
            Dataset::D04 => "Movie Studio video creation.",
            Dataset::D05 => "Pulse News application.",
            Dataset::Day24h => "One full day of mixed phone usage.",
            Dataset::Mini => "Miniature smoke session for fast end-to-end checks.",
        }
    }

    /// The canonical seed: the "volunteer" who recorded this dataset.
    pub fn seed(self) -> u64 {
        match self {
            Dataset::D01 => 0x5eed_0001,
            Dataset::D02 => 0x5eed_0002,
            Dataset::D03 => 0x5eed_0003,
            Dataset::D04 => 0x5eed_0004,
            Dataset::D05 => 0x5eed_0005,
            Dataset::Day24h => 0x5eed_0024,
            Dataset::Mini => 0x5eed_00ff,
        }
    }

    /// Builds the canonical workload (its recorded trace comes from
    /// [`DeviceScript::record_trace`](interlag_device::script::DeviceScript::record_trace)).
    pub fn build(self) -> Workload {
        self.build_seeded(self.seed())
    }

    /// Builds the same session blueprint with a different volunteer seed
    /// (used to check results are not one seed's accident).
    pub fn build_seeded(self, seed: u64) -> Workload {
        match self {
            Dataset::D01 => gallery(seed),
            Dataset::D02 => logo_quiz(seed),
            Dataset::D03 => news_and_mms(seed),
            Dataset::D04 => movie_studio(seed),
            Dataset::D05 => pulse_news(seed),
            Dataset::Day24h => day_24h(seed),
            Dataset::Mini => mini(seed),
        }
    }
}

/// The `mini` smoke dataset: a launch, a tap and a background burst in
/// about 25 simulated seconds. Small enough that an 18-configuration
/// study finishes in seconds even in a debug build — the dataset the CLI
/// integration tests and the CI durability job (kill, resume, diff)
/// sweep.
fn mini(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("open app", 300 * MCYCLES, 4, Common);
    b.think_ms(1_500, 2_500);
    b.quick_tap("tap", 100 * MCYCLES, SimpleFrequent);
    b.think_ms(1_500, 2_500);
    b.spurious_tap("mis-tap");
    b.background_burst("sync", SimDuration::from_secs(1), 200 * MCYCLES);
    b.build(Dataset::Mini.name(), Dataset::Mini.description())
}

/// Dataset 01 — Gallery image manipulation: browse, edit, save to SD.
/// The multi-gigacycle saves are the source of the paper's 12–13 s lags
/// at the lowest frequency.
fn gallery(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("launch Gallery", 830 * MCYCLES, 9, Common);
    b.think_ms(4_000, 8_000);
    for round in 0..7 {
        for i in 0..3 {
            b.quick_tap(&format!("open image {round}.{i}"), 220 * MCYCLES, SimpleFrequent);
            b.think_ms(6_000, 13_000);
        }
        b.quick_tap(&format!("apply filter {round}"), 1110 * MCYCLES, Common);
        b.think_ms(6_000, 12_000);
        b.heavy_with_progress(&format!("save image {round}"), 3600 * MCYCLES, Complex);
        b.think_ms(9_000, 18_000);
    }
    for i in 0..23 {
        if i % 4 == 3 {
            b.scroll(&format!("browse strip {i}"), 130 * MCYCLES, SimpleFrequent);
        } else {
            b.quick_tap(&format!("peek image {i}"), 205 * MCYCLES, SimpleFrequent);
        }
        b.think_ms(5_000, 11_000);
    }
    b.spurious_tap("tap beside thumbnail");
    b.think_ms(2_000, 4_000);
    b.spurious_tap("tap dead toolbar area");
    b.background_burst("media scanner", SimDuration::from_secs(5), 400 * MCYCLES);
    b.recurring_background(
        "periodic sync",
        SimDuration::from_secs(25),
        300 * MCYCLES,
        SimDuration::from_secs(600),
    );
    b.build(Dataset::D01.name(), Dataset::D01.description())
}

/// Dataset 02 — Logo Quiz: dense small taps with level loads; the most
/// interaction-intensive dataset (149 inputs in ten minutes).
fn logo_quiz(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("launch Logo Quiz", 740 * MCYCLES, 6, Common);
    b.think_ms(2_500, 5_000);
    for level in 0..10 {
        b.app_launch(&format!("open level {level}"), 590 * MCYCLES, 6, Common);
        b.think_ms(2_000, 4_500);
        for q in 0..11 {
            b.quick_tap(&format!("answer {level}.{q}"), 85 * MCYCLES, SimpleFrequent);
            b.think_ms(2_200, 4_200);
        }
        b.spurious_tap(&format!("mis-tap in level {level}"));
        b.think_ms(1_500, 3_000);
        b.scroll(&format!("scroll logos {level}"), 110 * MCYCLES, SimpleFrequent);
        b.think_ms(2_000, 4_000);
    }
    for i in 0..8 {
        b.quick_tap(&format!("retry logo {i}"), 90 * MCYCLES, SimpleFrequent);
        b.think_ms(2_000, 4_000);
    }
    b.background_burst("score sync", SimDuration::from_secs(3), 250 * MCYCLES);
    b.recurring_background(
        "periodic sync",
        SimDuration::from_secs(25),
        300 * MCYCLES,
        SimDuration::from_secs(560),
    );
    b.build(Dataset::D02.name(), Dataset::D02.description())
}

/// Dataset 03 — Pulse News widget + MMS: reading plus two typing bursts
/// and two sends whose progress dialog vanishes back to the same screen
/// (the matcher's occurrence-counting case).
fn news_and_mms(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("open news widget", 775 * MCYCLES, 8, Common);
    b.think_ms(5_000, 9_000);
    for i in 0..6 {
        b.scroll(&format!("scroll headlines {i}"), 130 * MCYCLES, SimpleFrequent);
        b.think_ms(5_000, 10_000);
        b.app_launch(&format!("open article {i}"), 775 * MCYCLES, 7, Common);
        b.think_ms(8_000, 14_000);
        b.quick_tap(&format!("back to widget {i}"), 165 * MCYCLES, SimpleFrequent);
        b.think_ms(4_000, 8_000);
    }
    for burst in 0..2 {
        b.typing_burst(&format!("compose MMS {burst}"), 12, 15 * MCYCLES);
        b.think_ms(2_000, 4_000);
        b.heavy_with_progress(&format!("send MMS {burst}"), 2000 * MCYCLES, Common);
        b.think_ms(6_000, 11_000);
        b.background_burst("mms delivery", SimDuration::from_secs(2), 300 * MCYCLES);
    }
    for i in 0..21 {
        if i % 3 == 0 {
            b.scroll(&format!("skim {i}"), 120 * MCYCLES, SimpleFrequent);
        } else {
            b.quick_tap(&format!("expand snippet {i}"), 240 * MCYCLES, SimpleFrequent);
        }
        b.think_ms(7_000, 13_000);
    }
    b.spurious_tap("tap on ad spacer");
    b.think_ms(2_000, 4_000);
    b.spurious_tap("settings not supported");
    b.background_burst("feed refresh", SimDuration::from_secs(30), 500 * MCYCLES);
    b.recurring_background(
        "periodic sync",
        SimDuration::from_secs(25),
        300 * MCYCLES,
        SimDuration::from_secs(620),
    );
    b.build(Dataset::D03.name(), Dataset::D03.description())
}

/// Dataset 04 — Movie Studio: timeline scrubbing and multi-gigacycle
/// renders.
fn movie_studio(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("launch Movie Studio", 925 * MCYCLES, 8, Common);
    b.think_ms(3_000, 6_000);
    for clip in 0..6 {
        b.quick_tap(&format!("import clip {clip}"), 1295 * MCYCLES, Common);
        b.think_ms(3_000, 6_000);
        for s in 0..5 {
            b.scroll(&format!("scrub timeline {clip}.{s}"), 165 * MCYCLES, SimpleFrequent);
            b.think_ms(2_800, 5_600);
        }
        b.quick_tap(&format!("preview clip {clip}"), 650 * MCYCLES, SimpleFrequent);
        b.think_ms(3_000, 6_000);
        b.heavy_with_progress(&format!("render segment {clip}"), 3200 * MCYCLES, Complex);
        b.think_ms(5_000, 9_000);
    }
    for i in 0..53 {
        if i % 3 == 0 {
            b.scroll(&format!("timeline pan {i}"), 155 * MCYCLES, SimpleFrequent);
        } else {
            b.quick_tap(&format!("trim handle {i}"), 295 * MCYCLES, SimpleFrequent);
        }
        b.think_ms(3_000, 6_400);
    }
    for i in 0..6 {
        b.spurious_tap(&format!("tap locked control {i}"));
        b.think_ms(2_000, 4_000);
    }
    b.background_burst("thumbnail generation", SimDuration::from_secs(8), 600 * MCYCLES);
    b.recurring_background(
        "periodic sync",
        SimDuration::from_secs(25),
        300 * MCYCLES,
        SimDuration::from_secs(600),
    );
    b.build(Dataset::D04.name(), Dataset::D04.description())
}

/// Dataset 05 — Pulse News app: reading-dominated with moderate loads.
fn pulse_news(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    b.app_launch("launch Pulse News", 890 * MCYCLES, 9, Common);
    b.think_ms(4_000, 8_000);
    for i in 0..10 {
        b.scroll(&format!("browse feed {i}"), 140 * MCYCLES, SimpleFrequent);
        b.think_ms(4_000, 8_000);
        b.app_launch(&format!("open story {i}"), 795 * MCYCLES, 7, Common);
        b.think_ms(9_000, 15_000);
        b.key_press(&format!("back from story {i}"), HardKey::Back, 205 * MCYCLES);
        b.think_ms(4_000, 8_000);
    }
    for i in 0..2 {
        b.quick_tap(&format!("refresh feed {i}"), 1020 * MCYCLES, Common);
        b.think_ms(5_000, 9_000);
    }
    for i in 0..40 {
        b.quick_tap(&format!("expand teaser {i}"), 220 * MCYCLES, SimpleFrequent);
        b.think_ms(2_600, 5_200);
    }
    for i in 0..8 {
        b.spurious_tap(&format!("tap margin {i}"));
        b.think_ms(2_000, 4_000);
    }
    b.background_burst("feed sync", SimDuration::from_secs(60), 500 * MCYCLES);
    b.background_burst("image prefetch", SimDuration::from_secs(200), 400 * MCYCLES);
    b.recurring_background(
        "periodic sync",
        SimDuration::from_secs(25),
        300 * MCYCLES,
        SimDuration::from_secs(680),
    );
    b.build(Dataset::D05.name(), Dataset::D05.description())
}

/// The 24-hour workload: ten short usage sessions spread across a day,
/// long idle stretches, periodic background syncs. Demonstrates that the
/// pipeline scales to day-length recordings (the paper's §I).
fn day_24h(seed: u64) -> Workload {
    let mut b = WorkloadBuilder::new(seed);
    // Session start times through the day (seconds since midnight-boot).
    let sessions: [u64; 10] =
        [28_800, 32_400, 37_800, 43_200, 48_600, 54_000, 61_200, 68_400, 75_600, 81_000];
    for (s, &start) in sessions.iter().enumerate() {
        b.jump_to(SimTime::from_secs(start));
        b.app_launch(&format!("session {s}: open app"), 775 * MCYCLES, 7, Common);
        b.think_ms(3_000, 7_000);
        for i in 0..18 {
            match i % 5 {
                0 => b.scroll(&format!("s{s} scroll {i}"), 130 * MCYCLES, SimpleFrequent),
                4 => b.quick_tap(&format!("s{s} open item {i}"), 650 * MCYCLES, Common),
                _ => b.quick_tap(&format!("s{s} tap {i}"), 165 * MCYCLES, SimpleFrequent),
            };
            b.think_ms(2_500, 8_000);
        }
        b.spurious_tap(&format!("s{s} mis-tap"));
        b.think_ms(1_500, 3_000);
        b.key_press(&format!("s{s} home"), HardKey::Home, 150 * MCYCLES);
    }
    // Hourly background sync while the phone sleeps in the pocket.
    for hour in 1..24 {
        b.background_burst(
            &format!("hourly sync {hour}"),
            SimTime::from_secs(hour * 3_600).saturating_since(b.now()),
            555 * MCYCLES,
        );
    }
    b.jump_to(SimTime::from_secs(86_400));
    b.spurious_tap("midnight pocket touch");
    b.build(Dataset::Day24h.name(), Dataset::Day24h.description())
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_evdev::classify::{classify_trace, count_inputs, ClassifierConfig};

    #[test]
    fn ten_minute_datasets_have_paper_scale_input_counts() {
        // Figure 10 event counts: 68, 149, 76, 114, 83 (±20 % is fine —
        // we reproduce the scale and ordering, not the exact volunteers).
        let expected = [68usize, 149, 76, 114, 83];
        for (ds, want) in Dataset::TEN_MINUTE.iter().zip(expected) {
            let w = ds.build();
            let got = w.script.interactions.len();
            let lo = want * 4 / 5;
            let hi = want * 6 / 5;
            assert!(
                (lo..=hi).contains(&got),
                "dataset {}: {got} inputs, expected ≈{want}",
                ds.name()
            );
        }
    }

    #[test]
    fn dataset_02_is_the_densest() {
        let counts: Vec<usize> =
            Dataset::TEN_MINUTE.iter().map(|d| d.build().script.interactions.len()).collect();
        let max = counts.iter().max().unwrap();
        assert_eq!(counts[1], *max, "D02 (Logo Quiz) must be the densest: {counts:?}");
    }

    #[test]
    fn ten_minute_datasets_fit_in_ten_minutes() {
        for ds in Dataset::TEN_MINUTE {
            let w = ds.build();
            let secs = w.duration.as_secs_f64();
            assert!((420.0..=780.0).contains(&secs), "dataset {} lasts {secs:.0} s", ds.name());
        }
    }

    #[test]
    fn taps_dominate_and_spurious_lags_exist() {
        for ds in Dataset::TEN_MINUTE {
            let w = ds.build();
            let trace = w.script.record_trace();
            let inputs = classify_trace(&trace, &ClassifierConfig::default());
            let counts = count_inputs(&inputs);
            assert!(counts.taps > counts.swipes, "{}: {counts:?}", ds.name());
            let spurious = w.script.interactions.iter().filter(|i| i.is_spurious()).count();
            assert!(spurious >= 1, "{} needs spurious inputs", ds.name());
            assert!(
                spurious * 4 <= w.script.interactions.len(),
                "{}: too many spurious inputs",
                ds.name()
            );
        }
    }

    #[test]
    fn day_workload_spans_a_day_with_sparse_interactions() {
        let w = Dataset::Day24h.build();
        assert!(w.duration >= SimDuration::from_secs(86_000));
        let n = w.script.interactions.len();
        assert!((180..=260).contains(&n), "24 h workload has {n} inputs");
        assert!(w.script.background.len() >= 20);
    }

    #[test]
    fn canonical_builds_are_reproducible() {
        for ds in [Dataset::D01, Dataset::D03, Dataset::Day24h] {
            assert_eq!(ds.build().script, ds.build().script);
        }
    }

    #[test]
    fn different_seeds_give_different_sessions() {
        let a = Dataset::D01.build_seeded(1);
        let b = Dataset::D01.build_seeded(2);
        assert_ne!(a.script, b.script);
        // Same structure though: identical interaction count.
        assert_eq!(a.script.interactions.len(), b.script.interactions.len());
    }

    #[test]
    fn recorded_traces_roundtrip_through_getevent_text() {
        let w = Dataset::D02.build();
        let trace = w.script.record_trace();
        let text = trace.to_getevent_text();
        let parsed: interlag_evdev::trace::EventTrace = text.parse().unwrap();
        assert_eq!(parsed, trace);
    }
}
