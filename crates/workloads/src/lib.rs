//! # interlag-workloads — the study's interactive workloads
//!
//! Reproductions of the recorded sessions of *Seeker et al., IISWC 2014*
//! (Table I): five ten-minute volunteer sessions across Gallery, Logo
//! Quiz, Pulse News, MMS and Movie Studio, plus a 24-hour mixed recording.
//! A workload carries both halves of a recording — the gesture stream
//! (lowered to a raw input-event trace for the replay agent) and the
//! scripted app reactions (compute demands + screen changes).
//!
//! * [`gen`] — the seeded session builder;
//! * [`datasets`] — the concrete datasets;
//! * [`network`] — networking workloads and the deterministic proxy
//!   (the paper's §VI future work).
//!
//! # Examples
//!
//! ```
//! use interlag_workloads::datasets::Dataset;
//!
//! let w = Dataset::D01.build();
//! assert_eq!(w.name, "01");
//! let trace = w.script.record_trace();
//! assert!(trace.len() > 300, "a ten-minute session has hundreds of raw events");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod gen;
pub mod network;

pub use datasets::Dataset;
pub use gen::{Workload, WorkloadBuilder, MCYCLES};
pub use network::{news_browsing, NetworkCondition};
