//! Property-based tests of the analysis algorithms: for arbitrary
//! synthetic videos the suggester/matcher pair must uphold the invariants
//! the methodology relies on.

use std::sync::Arc;

use proptest::prelude::*;

use interlag_core::annotation::LagAnnotation;
use interlag_core::irritation::{user_irritation, ThresholdModel};
use interlag_core::matcher::Matcher;
use interlag_core::oracle::{build_oracle, OracleConfig};
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_core::stats::{five_number, kernel_density, percentile_sorted};
use interlag_core::suggester::{Suggester, SuggesterConfig};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_power::opp::Frequency;
use interlag_video::frame::{FrameBuffer, Rect};
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};

fn frame_of(symbol: u8) -> Arc<FrameBuffer> {
    let mut f = FrameBuffer::new(16, 16);
    f.hash_paint(f.bounds(), symbol as u64 + 1);
    Arc::new(f)
}

/// A video described by a symbol string: equal symbols are identical
/// frames.
fn video_of(symbols: &[u8]) -> VideoStream {
    let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
    for (i, &s) in symbols.iter().enumerate() {
        v.push(SimTime::from_micros(i as u64 * 33_333), frame_of(s)).unwrap();
    }
    v
}

/// Random videos: runs of 1–20 identical frames over a small alphabet.
fn arb_symbols() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec((0u8..6, 1usize..20), 1..25).prop_map(|runs| {
        runs.into_iter().flat_map(|(sym, len)| std::iter::repeat_n(sym, len)).collect()
    })
}

proptest! {
    /// Every suggestion is a change frame followed by the configured
    /// still run (or clipped by the window end).
    #[test]
    fn suggestions_are_changes_followed_by_stills(
        symbols in arb_symbols(),
        min_still in 1u32..6,
    ) {
        let video = video_of(&symbols);
        let suggester = Suggester::new(SuggesterConfig {
            min_still_run: min_still,
            ..Default::default()
        });
        let end = SimTime::from_secs(3_600);
        let suggestions = suggester.suggest(&video, SimTime::ZERO, end);
        for s in &suggestions {
            let i = s.frame_index as usize;
            prop_assert!(i > 0, "frame 0 never differs from a predecessor");
            prop_assert_ne!(&symbols[i], &symbols[i - 1], "suggested frame must be a change");
            // Following still run: min_still frames or until the video ends.
            let still_until = (i + 1 + min_still as usize).min(symbols.len());
            let clipped = i + 1 + (min_still as usize) > symbols.len();
            let all_still = symbols[i..still_until].iter().all(|&x| x == symbols[i]);
            prop_assert!(all_still || clipped);
        }
    }

    /// Every run boundary into a sufficiently long still period is
    /// suggested — the suggester never misses a real ending candidate.
    #[test]
    fn all_long_stills_are_suggested(symbols in arb_symbols(), min_still in 1u32..4) {
        let video = video_of(&symbols);
        let suggester = Suggester::new(SuggesterConfig {
            min_still_run: min_still,
            ..Default::default()
        });
        let suggestions: Vec<usize> = suggester
            .suggest(&video, SimTime::ZERO, SimTime::from_secs(3_600))
            .into_iter()
            .map(|s| s.frame_index as usize)
            .collect();
        for i in 1..symbols.len() {
            if symbols[i] == symbols[i - 1] {
                continue;
            }
            let still_until = (i + 1 + min_still as usize).min(symbols.len());
            let long_still = still_until - (i + 1) >= min_still as usize
                && symbols[i..still_until].iter().all(|&x| x == symbols[i]);
            if long_still {
                prop_assert!(suggestions.contains(&i), "missed ending at frame {i}");
            }
        }
    }

    /// Planting an annotation image at a known frame: the matcher finds
    /// exactly that frame when given the right occurrence number.
    #[test]
    fn matcher_finds_planted_occurrences(symbols in arb_symbols(), target in 0u8..6) {
        let video = video_of(&symbols);
        // Count match runs of `target` and check each occurrence is found
        // at its run's first frame.
        let mut runs: Vec<usize> = Vec::new();
        let mut in_run = false;
        for (i, &s) in symbols.iter().enumerate() {
            if s == target && !in_run {
                runs.push(i);
            }
            in_run = s == target;
        }
        let matcher = Matcher::new();
        for (occ_idx, &start_frame) in runs.iter().enumerate() {
            let ann = LagAnnotation {
                interaction_id: 0,
                image: frame_of(target).as_ref().clone(),
                mask: Mask::new(),
                tolerance: MatchTolerance::EXACT,
                occurrence: occ_idx as u32 + 1,
                threshold: SimDuration::from_secs(1),
            };
            let hit = matcher.match_lag(&video, SimTime::ZERO, &ann).expect("planted");
            prop_assert_eq!(hit.end_frame as usize, start_frame);
        }
        // One occurrence past the last run must fail.
        let ann = LagAnnotation {
            interaction_id: 0,
            image: frame_of(target).as_ref().clone(),
            mask: Mask::new(),
            tolerance: MatchTolerance::EXACT,
            occurrence: runs.len() as u32 + 1,
            threshold: SimDuration::from_secs(1),
        };
        prop_assert!(matcher.match_lag(&video, SimTime::ZERO, &ann).is_err());
    }

    /// Irritation is monotone: uniformly longer lags never irritate less,
    /// and it is exactly zero when every lag meets its threshold.
    #[test]
    fn irritation_monotonicity(
        lags_ms in prop::collection::vec(1u64..20_000, 1..40),
        scale_pct in 100u64..400,
    ) {
        let mk = |scale: u64| {
            let mut p = LagProfile::new("p");
            for (i, &ms) in lags_ms.iter().enumerate() {
                p.push(LagEntry {
                    interaction_id: i,
                    input_time: SimTime::from_secs(i as u64),
                    lag: SimDuration::from_millis(ms * scale / 100),
                    threshold: SimDuration::from_secs(2),
                    confidence: 1.0,
                });
            }
            p
        };
        let base = mk(100);
        let scaled = mk(scale_pct);
        let model = ThresholdModel::Annotated;
        let a = user_irritation(&base, &model).total();
        let b = user_irritation(&scaled, &model).total();
        prop_assert!(b >= a);

        // Under the paper rule against itself: always zero.
        let self_rule = ThresholdModel::paper_rule(base.clone());
        prop_assert_eq!(user_irritation(&base, &self_rule).total(), SimDuration::ZERO);
    }

    /// The oracle picks, per lag, the slowest frequency meeting the
    /// threshold, and its plan never dips below the efficient frequency.
    #[test]
    fn oracle_picks_slowest_adequate_frequency(
        base_ms in prop::collection::vec(50u64..3_000, 1..12),
    ) {
        use std::collections::BTreeMap;
        let freqs = [300u32, 960, 2_150];
        let mut profiles = BTreeMap::new();
        for &mhz in &freqs {
            let mut p = LagProfile::new(format!("f{mhz}"));
            for (i, &ms) in base_ms.iter().enumerate() {
                // Perfectly CPU-bound lags.
                let lag = ms * 2_150 / mhz as u64;
                p.push(LagEntry {
                    interaction_id: i,
                    input_time: SimTime::from_secs(10 * (i as u64 + 1)),
                    lag: SimDuration::from_millis(lag),
                    threshold: SimDuration::from_secs(1),
                    confidence: 1.0,
                });
            }
            profiles.insert(Frequency::from_mhz(mhz), p);
        }
        let cfg = OracleConfig::paper(Frequency::from_mhz(960));
        let oracle = build_oracle(&profiles, &cfg);
        for d in &oracle.decisions {
            // With perfect 1/f scaling and 10 % slack, only the fastest
            // frequency qualifies.
            prop_assert_eq!(d.freq, Frequency::from_mhz(2_150));
        }
        // The plan never goes below the efficient frequency.
        for ms in (0..130_000).step_by(250) {
            let f = oracle.plan.freq_at(SimTime::from_millis(ms));
            prop_assert!(f >= Frequency::from_mhz(960));
        }
    }

    /// The compiled mask and the digest-gated/early-exit comparison paths
    /// must agree exactly with the naive per-pixel reference
    /// (`Mask::count_diff`) on arbitrary frames, masks and tolerances —
    /// the fast paths are optimisations, never approximations.
    #[test]
    fn fast_matching_paths_agree_with_naive(
        dims in (1u32..24, 1u32..24),
        seed in proptest::num::u64::ANY,
        flips in prop::collection::vec(
            (proptest::num::u32::ANY, proptest::num::u32::ANY, proptest::num::u8::ANY),
            0..16,
        ),
        rects in prop::collection::vec((0u32..30, 0u32..30, 0u32..12, 0u32..12), 0..4),
        value_tolerance in 0u8..6,
        pixel_budget in 0u64..40,
    ) {
        let (w, h) = dims;
        let mut a = FrameBuffer::new(w, h);
        a.hash_paint(a.bounds(), seed);
        let mut b = a.clone();
        for &(x, y, v) in &flips {
            b.set(x % w, y % h, v);
        }
        // Rects may be empty, overlap, or hang past the frame edge.
        let mask: Mask = rects
            .iter()
            .map(|&(x0, y0, rw, rh)| Rect::new(x0, y0, rw, rh))
            .collect();
        let tolerance = MatchTolerance { value_tolerance, pixel_budget };

        let naive = mask.count_diff(&a, &b, value_tolerance);
        let compiled = mask.compile(w, h);
        prop_assert_eq!(compiled.count_diff(&a, &b, value_tolerance), naive);
        prop_assert_eq!(compiled.visible_area(), mask.visible_area(w, h));

        let naive_matches = naive <= pixel_budget;
        prop_assert_eq!(tolerance.matches(&mask, &a, &b), naive_matches);
        prop_assert_eq!(tolerance.matches_compiled(&compiled, &a, &b), naive_matches);

        for limit in [0, pixel_budget, naive.saturating_sub(1), naive, naive + 1] {
            prop_assert_eq!(mask.differs_more_than(&a, &b, value_tolerance, limit), naive > limit);
            prop_assert_eq!(
                compiled.differs_more_than(&a, &b, value_tolerance, limit),
                naive > limit
            );
            prop_assert_eq!(
                a.differs_more_than(&b, value_tolerance, limit),
                a.count_diff(&b, value_tolerance) > limit
            );
        }

        // The digest-gated EXACT path is exactly frame equality.
        prop_assert_eq!(MatchTolerance::EXACT.matches(&Mask::new(), &a, &b), a == b);
        prop_assert_eq!((a.digest() == b.digest()) || a != b, true);
    }

    /// Statistics invariants on arbitrary data.
    #[test]
    fn stats_invariants(values in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let f = five_number(&values).expect("non-empty");
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median);
        prop_assert!(f.median <= f.q3 && f.q3 <= f.max);
        prop_assert!(f.min <= f.mean && f.mean <= f.max);
        let (lo, hi) = f.whiskers();
        prop_assert!(lo >= f.min && hi <= f.max);

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(percentile_sorted(&sorted, 0.0), sorted[0]);
        prop_assert_eq!(percentile_sorted(&sorted, 100.0), sorted[sorted.len() - 1]);

        let kde = kernel_density(&values, 32);
        prop_assert_eq!(kde.len(), 32);
        prop_assert!(kde.iter().all(|(_, d)| d.is_finite() && *d >= 0.0));
    }
}
