//! Kill–resume equivalence and watchdog acceptance for journalled studies.
//!
//! The durability contract is absolute: a journalled study killed at *any*
//! byte of its journal — a record boundary or the middle of a torn write —
//! and resumed must reproduce the uninterrupted run's reports
//! byte-for-byte, at any worker count. And a repetition wedged by a
//! wall-clock hang must be cancelled by the rep watchdog, recorded as
//! timed out, and must not stop the rest of the sweep.

use std::path::PathBuf;
use std::time::Duration;

use interlag_core::checkpoint::{study_fingerprint, StudyJournal};
use interlag_core::experiment::{
    Lab, LabConfig, RepOutcome, StudyOptions, StudyResult, WatchdogConfig,
};
use interlag_core::report::{oracle_csv, profile_csv, study_csv};
use interlag_device::script::InteractionCategory;
use interlag_faults::{FaultConfig, WedgeFaults};
use interlag_journal::decode_records;
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// The cheapest workload that still exercises the full 18-configuration
/// matrix: kill–resume sweeps re-run the study dozens of times.
fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xd04a);
    b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("durability", "kill-resume workload")
}

fn lab_config(workers: usize) -> LabConfig {
    LabConfig { reps: 1, workers, ..Default::default() }
}

/// Every report the CLI exports, concatenated: the equivalence the test
/// asserts is exactly what a user diffing output files would see.
fn reports(study: &StudyResult) -> String {
    let mut out = study_csv(study);
    out.push_str(&oracle_csv(study));
    for c in study.all_configs() {
        out.push_str(&profile_csv(c));
    }
    out
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("interlag-durability-{}-{tag}.journal", std::process::id()))
}

#[test]
fn kill_resume_is_byte_identical_at_every_truncation_point() {
    let w = small_workload();
    let trace_text = w.script.record_trace().to_getevent_text();

    for workers in [1usize, 4] {
        let fingerprint = study_fingerprint(&trace_text, &lab_config(workers));
        let path = temp_journal(&format!("kill-{workers}"));
        let _ = std::fs::remove_file(&path);

        let journal = StudyJournal::create(&path, fingerprint).expect("create journal");
        let golden = Lab::new(lab_config(workers))
            .study_with(&w, StudyOptions { journal: Some(&journal), trace: None, scope: None })
            .expect("golden study");
        let golden_reports = reports(&golden);
        drop(journal);

        let bytes = std::fs::read(&path).expect("journal written");
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.torn, 0, "a completed study leaves a clean journal");
        assert_eq!(decoded.records.len(), 18, "one record per (config, rep)");

        // Cut at every record boundary (including the empty journal) and
        // in the middle of every record — the torn-tail case a SIGKILL
        // mid-`write` leaves behind.
        let mut cuts = vec![0usize];
        let mut prev = 0;
        for &boundary in &decoded.boundaries {
            cuts.push(prev + (boundary - prev) / 2);
            cuts.push(boundary);
            prev = boundary;
        }

        for cut in cuts {
            std::fs::write(&path, &bytes[..cut]).expect("truncate journal");
            let resumed_journal = StudyJournal::resume(&path, fingerprint).expect("resume journal");
            let resumed = Lab::new(lab_config(workers))
                .study_with(
                    &w,
                    StudyOptions { journal: Some(&resumed_journal), trace: None, scope: None },
                )
                .expect("resumed study");
            assert_eq!(
                reports(&resumed),
                golden_reports,
                "workers={workers}: resume after kill at byte {cut} diverged"
            );
        }

        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn resume_ignores_a_journal_from_a_different_study() {
    let w = small_workload();
    let trace_text = w.script.record_trace().to_getevent_text();
    let fingerprint = study_fingerprint(&trace_text, &lab_config(1));
    let path = temp_journal("foreign");
    let _ = std::fs::remove_file(&path);

    let journal = StudyJournal::create(&path, fingerprint).expect("create journal");
    let golden = Lab::new(lab_config(1))
        .study_with(&w, StudyOptions { journal: Some(&journal), trace: None, scope: None })
        .expect("golden study");
    drop(journal);

    // Resuming under a different fingerprint (say, a retuned lab) must
    // treat every record as foreign and re-run the full sweep — and still
    // land on the identical result, because repetitions are pure.
    let foreign = StudyJournal::resume(&path, fingerprint ^ 1).expect("resume journal");
    assert_eq!(foreign.replayable(), 0);
    assert_eq!(foreign.foreign(), 18);
    let rerun = Lab::new(lab_config(1))
        .study_with(&w, StudyOptions { journal: Some(&foreign), trace: None, scope: None })
        .expect("re-run study");
    assert_eq!(reports(&rerun), reports(&golden));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn watchdog_cancels_wedged_reps_and_the_sweep_completes() {
    let w = small_workload();
    // Every repetition attempt wedges: the governor path stalls the host
    // thread a few milliseconds per sample, far past the fixed watchdog
    // budget. Without cooperative cancellation this test would hang.
    let mut faults = FaultConfig::quiescent(0x7ed);
    faults.wedge = WedgeFaults { hang_rate: 1.0, stall_ms: 5 };
    let lab = Lab::new(LabConfig {
        reps: 1,
        faults: Some(faults),
        retry_budget: 0,
        watchdog: WatchdogConfig::Fixed(Duration::from_millis(40)),
        ..Default::default()
    });

    let study = lab.study(&w).expect("the sweep must survive wedged reps");
    assert_eq!(study.all_configs().count(), 18, "every configuration reported");

    let timed_out: usize = study.all_configs().map(|c| c.timed_out()).sum();
    assert!(timed_out > 0, "the watchdog never fired on an always-wedged sweep");
    for c in study.all_configs() {
        for o in &c.outcomes {
            assert!(
                matches!(o, RepOutcome::TimedOut { .. } | RepOutcome::Ok),
                "{}: wedge faults should time out or pass (reference reuse), got {o:?}",
                c.name
            );
        }
    }
}

#[test]
fn journalled_timeouts_replay_instead_of_re_wedging() {
    let w = small_workload();
    let trace_text = w.script.record_trace().to_getevent_text();
    let mut faults = FaultConfig::quiescent(0x7ed);
    faults.wedge = WedgeFaults { hang_rate: 1.0, stall_ms: 5 };
    let config = || LabConfig {
        reps: 1,
        faults: Some(faults),
        retry_budget: 0,
        watchdog: WatchdogConfig::Fixed(Duration::from_millis(40)),
        ..Default::default()
    };
    let fingerprint = study_fingerprint(&trace_text, &config());
    let path = temp_journal("wedge");
    let _ = std::fs::remove_file(&path);

    let journal = StudyJournal::create(&path, fingerprint).expect("create journal");
    let golden = Lab::new(config())
        .study_with(&w, StudyOptions { journal: Some(&journal), trace: None, scope: None })
        .expect("wedged sweep completes");
    let timed_out: usize = golden.all_configs().map(|c| c.timed_out()).sum();
    assert!(timed_out > 0);
    drop(journal);

    // The timed-out outcomes are in the journal: a resume replays them
    // rather than paying the watchdog budget again, and reports match.
    let resumed_journal = StudyJournal::resume(&path, fingerprint).expect("resume journal");
    assert_eq!(resumed_journal.replayable(), 18);
    let started = std::time::Instant::now();
    let resumed = Lab::new(config())
        .study_with(&w, StudyOptions { journal: Some(&resumed_journal), trace: None, scope: None })
        .expect("replayed study");
    let elapsed = started.elapsed();
    assert_eq!(reports(&resumed), reports(&golden));
    let resumed_timed_out: usize = resumed.all_configs().map(|c| c.timed_out()).sum();
    assert_eq!(resumed_timed_out, timed_out, "replay must preserve timed-out outcomes");
    assert!(
        elapsed < Duration::from_millis(40) * 18,
        "a full replay should not re-pay the watchdog budget ({elapsed:?})"
    );

    let _ = std::fs::remove_file(&path);
}
