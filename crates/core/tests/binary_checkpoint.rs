//! The compact binary checkpoint codec: bit-exact round-trips (NaN and
//! infinity confidences included), corruption detection through the
//! journal's binary framing, and resume equivalence between JSON and
//! binary study journals — including one file holding both formats.

use interlag_core::checkpoint::{
    decode_checkpoint_any, decode_checkpoint_binary, encode_checkpoint, encode_checkpoint_binary,
    CheckpointFormat, CheckpointRecord, StudyJournal,
};
use interlag_core::error::InterlagError;
use interlag_core::experiment::{RepOutcome, RepResult};
use interlag_core::ingest::DatasetError;
use interlag_core::matcher::MatchFailure;
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_device::DeviceError;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::{decode_records, encode_record_binary};
use interlag_video::stream::VideoError;
use proptest::prelude::*;

fn confidence() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..1.0,
        Just(1.0f64),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE),
    ]
}

fn lag_entry() -> impl Strategy<Value = LagEntry> {
    (0usize..10_000, 0u64..86_400_000_000, 0u64..600_000_000, 0u64..5_000_000, confidence())
        .prop_map(|(id, input_us, lag_us, threshold_us, confidence)| LagEntry {
            interaction_id: id,
            input_time: SimTime::from_micros(input_us),
            lag: SimDuration::from_micros(lag_us),
            threshold: SimDuration::from_micros(threshold_us),
            confidence,
        })
}

fn rep_result() -> impl Strategy<Value = RepResult> {
    let name = prop_oneof![
        Just("ondemand".to_string()),
        Just("fixed-0.30 GHz".to_string()),
        Just("naïve ünïcode".to_string()), // config names are length-prefixed UTF-8
        (0u32..100).prop_map(|i| format!("config-{i}")),
    ];
    (
        name,
        proptest::collection::vec(lag_entry(), 0..20),
        proptest::num::u64::ANY, // raw IEEE bits: NaN payloads, denormals, infinities
        0u64..3_600_000_000,
        0usize..10,
        0usize..10,
    )
        .prop_map(
            |(name, entries, energy_bits, irritation_us, match_failures, input_faults)| {
                let mut profile = LagProfile::new(name);
                for e in entries {
                    profile.push(e);
                }
                RepResult {
                    profile,
                    dynamic_energy_mj: f64::from_bits(energy_bits),
                    irritation: SimDuration::from_micros(irritation_us),
                    match_failures,
                    input_faults,
                }
            },
        )
}

fn cause() -> impl Strategy<Value = InterlagError> {
    let match_failure = prop_oneof![
        Just(MatchFailure::NotAnnotated),
        Just(MatchFailure::EndingNotFound),
        Just(MatchFailure::Cancelled),
    ];
    prop_oneof![
        (0u64..1_000_000_000, 0u64..1_000_000_000).prop_map(|(prev_us, time_us)| {
            InterlagError::Device(DeviceError::Video(VideoError::NonMonotonicTimestamp {
                prev: SimTime::from_micros(prev_us),
                time: SimTime::from_micros(time_us),
            }))
        }),
        Just(InterlagError::Device(DeviceError::Cancelled)),
        (0usize..500, match_failure)
            .prop_map(|(interaction_id, failure)| InterlagError::Match { interaction_id, failure }),
        Just(InterlagError::MissingVideo),
        Just(InterlagError::Timeout),
        (0usize..1_000_000)
            .prop_map(|offset| InterlagError::Dataset(DatasetError::BadUtf8 { offset })),
    ]
}

fn rep_outcome() -> impl Strategy<Value = RepOutcome> {
    prop_oneof![
        Just(RepOutcome::Ok),
        (2u32..10).prop_map(|attempts| RepOutcome::Retried { attempts }),
        (1u32..10).prop_map(|attempts| RepOutcome::TimedOut { attempts }),
        (1u32..10, cause()).prop_map(|(attempts, cause)| RepOutcome::Abandoned { attempts, cause }),
    ]
}

fn assert_result_bits_equal(a: &RepResult, b: &RepResult) {
    assert_eq!(a.profile.config, b.profile.config);
    assert_eq!(a.profile.entries().len(), b.profile.entries().len());
    for (x, y) in a.profile.entries().iter().zip(b.profile.entries()) {
        assert_eq!(x.interaction_id, y.interaction_id);
        assert_eq!(x.input_time, y.input_time);
        assert_eq!(x.lag, y.lag);
        assert_eq!(x.threshold, y.threshold);
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
    }
    assert_eq!(a.dynamic_energy_mj.to_bits(), b.dynamic_energy_mj.to_bits());
    assert_eq!(a.irritation, b.irritation);
    assert_eq!(a.match_failures, b.match_failures);
    assert_eq!(a.input_faults, b.input_faults);
}

proptest! {
    /// Binary encode → decode is the identity, `decode_checkpoint_any`
    /// accepts both codecs, and the binary payload is smaller than the
    /// JSON it replaces.
    #[test]
    fn binary_checkpoints_round_trip_bit_exactly(
        fingerprint in proptest::num::u64::ANY,
        config in 0usize..32,
        rep in 0u32..16,
        result in rep_result(),
        outcome in rep_outcome(),
    ) {
        let record = CheckpointRecord::new(fingerprint, config, rep, &result, &outcome);
        let payload = encode_checkpoint_binary(&record);
        let back = decode_checkpoint_binary(&payload).expect("a clean payload decodes");
        prop_assert_eq!(&back, &record);

        // Auto-detection resolves both codecs to the same record.
        let any_bin = decode_checkpoint_any(&payload).expect("binary auto-detects");
        let any_json = decode_checkpoint_any(&encode_checkpoint(&record)).expect("json auto-detects");
        prop_assert_eq!(&any_bin, &record);
        prop_assert_eq!(&any_json, &record);

        let (config2, rep2, result2, outcome2) = back.into_parts();
        prop_assert_eq!(config2, config);
        prop_assert_eq!(rep2, rep);
        prop_assert_eq!(&outcome2, &outcome);
        assert_result_bits_equal(&result2, &result);

        prop_assert!(
            payload.len() < encode_checkpoint(&record).len(),
            "the compact codec must actually be compact"
        );
    }

    /// Flipping any single byte of a binary-framed checkpoint is caught
    /// by the CRC: nothing decodes, and nothing misparses into a
    /// different record.
    #[test]
    fn framed_binary_checkpoint_survives_no_single_byte_corruption(
        result in rep_result(),
        outcome in rep_outcome(),
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let record = CheckpointRecord::new(0x5eed, 3, 1, &result, &outcome);
        let payload = encode_checkpoint_binary(&record);
        let framed = encode_record_binary(&payload);

        let idx = ((framed.len() as f64 * byte_frac) as usize).min(framed.len() - 1);
        let mut corrupt = framed.clone();
        corrupt[idx] ^= flip;

        let out = decode_records(&corrupt);
        prop_assert!(
            out.records.is_empty(),
            "single-byte corruption at byte {} escaped the checksum",
            idx
        );
    }

    /// Decoding arbitrary bytes behind the magic never panics and never
    /// fabricates a record that re-encodes differently.
    #[test]
    fn binary_decoder_is_total_on_garbage(noise in proptest::collection::vec(proptest::num::u8::ANY, 0..200)) {
        let mut payload = b"ILC1".to_vec();
        payload.extend_from_slice(&noise);
        if let Some(record) = decode_checkpoint_binary(&payload) {
            prop_assert_eq!(encode_checkpoint_binary(&record), payload);
        }
    }
}

/// One study journalled as JSON and one journalled binary replay
/// identically; a JSON-era file continued with binary appends resumes
/// with every record from both eras.
#[test]
fn json_and_binary_journals_resume_equivalently() {
    let dir = std::env::temp_dir().join(format!("interlag-binckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tempdir");
    let json_path = dir.join("study.json");
    let bin_path = dir.join("study.journal");

    let mut profile = LagProfile::new("interactive");
    profile.push(LagEntry {
        interaction_id: 7,
        input_time: SimTime::from_micros(1_000_001),
        lag: SimDuration::from_micros(240_007),
        threshold: SimDuration::from_millis(1_000),
        confidence: 0.1 + 0.2,
    });
    let result = RepResult {
        profile,
        dynamic_energy_mj: f64::NAN,
        irritation: SimDuration::from_micros(55),
        match_failures: 1,
        input_faults: 0,
    };

    for (path, format) in
        [(&json_path, CheckpointFormat::Json), (&bin_path, CheckpointFormat::Binary)]
    {
        let journal = StudyJournal::create(path, 0xfeed).expect("create");
        assert_eq!(journal.format(), format);
        journal.record(0, 0, &result, &RepOutcome::Ok);
        journal.record(1, 2, &result, &RepOutcome::Retried { attempts: 2 });
        assert_eq!(journal.write_errors(), 0);
    }

    let from_json = StudyJournal::resume(&json_path, 0xfeed).expect("resume json");
    let from_bin = StudyJournal::resume(&bin_path, 0xfeed).expect("resume binary");
    assert_eq!(from_json.replayable(), 2);
    assert_eq!(from_bin.replayable(), 2);
    for (config, rep) in [(0usize, 0u32), (1, 2)] {
        let (rj, oj) = from_json.cached(config, rep).expect("json cached");
        let (rb, ob) = from_bin.cached(config, rep).expect("binary cached");
        assert_eq!(oj, ob);
        assert_result_bits_equal(&rj, &rb);
    }
    drop((from_json, from_bin));

    // A journal written in the JSON era and renamed keeps its records
    // when binary appends extend it: the decoder handles mixed files.
    let mixed_path = dir.join("migrated.journal");
    std::fs::copy(&json_path, &mixed_path).expect("copy");
    {
        let migrated = StudyJournal::resume(&mixed_path, 0xfeed).expect("resume migrated");
        assert_eq!(migrated.format(), CheckpointFormat::Binary);
        assert_eq!(migrated.replayable(), 2, "JSON records survive the format switch");
        migrated.record(2, 0, &result, &RepOutcome::Ok);
    }
    let mixed = StudyJournal::resume(&mixed_path, 0xfeed).expect("resume mixed");
    assert_eq!(mixed.replayable(), 3, "records from both eras replay");
    assert_eq!(mixed.torn(), 0);
    assert_eq!(mixed.foreign(), 0);

    std::fs::remove_dir_all(&dir).ok();
}
