//! Regression: the suggester assumes strictly increasing frame
//! timestamps — `first_frame_at_or_after` binary-searches the time axis
//! and `change_sequence` treats each index as a distinct instant. A
//! duplicate timestamp must therefore be rejected at the stream
//! boundary (a typed [`VideoError`]), and the suggester must behave
//! correctly on the frames that survive.

use std::sync::Arc;

use interlag_core::suggester::{Suggester, SuggesterConfig};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_video::frame::FrameBuffer;
use interlag_video::stream::{VideoError, VideoStream, FRAME_PERIOD_30FPS};

fn frame(v: u8) -> Arc<FrameBuffer> {
    let mut f = FrameBuffer::new(8, 8);
    f.fill(v);
    Arc::new(f)
}

#[test]
fn duplicate_timestamps_are_rejected_and_suggester_sees_clean_frames() {
    let period = FRAME_PERIOD_30FPS;
    let mut video = VideoStream::new(period);
    let base = frame(10);
    let ending = frame(200);

    // A A A E E E on the 30 fps grid, with a stalled-capture duplicate
    // attempted at the change point.
    for i in 0..3u64 {
        video.push(SimTime::ZERO + period * i, base.clone()).unwrap();
    }
    let stalled_at = SimTime::ZERO + period * 2;
    let err = video.push(stalled_at, ending.clone()).unwrap_err();
    assert_eq!(err, VideoError::NonMonotonicTimestamp { prev: stalled_at, time: stalled_at });
    // The typed rejection leaves the stream intact: same length, and the
    // last surviving frame still holds the pre-change image.
    assert_eq!(video.len(), 3);
    assert!(Arc::ptr_eq(&video.frames()[2].buf, &base));

    for i in 3..6u64 {
        video.push(SimTime::ZERO + period * i, ending.clone()).unwrap();
    }

    // Strictly increasing timestamps survive, so the binary-searched
    // window bounds are unambiguous...
    let times: Vec<u64> = video.iter().map(|f| f.time.as_micros()).collect();
    assert!(times.windows(2).all(|w| w[0] < w[1]), "timestamps not strictly increasing");

    // ...and the suggester finds exactly one ending, at the first frame
    // showing the new image — not at the rejected duplicate's slot.
    let suggester = Suggester::new(SuggesterConfig::default());
    let suggestions =
        suggester.suggest(&video, SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(1));
    assert_eq!(suggestions.len(), 1);
    assert_eq!(suggestions[0].frame_index, 3);
    assert_eq!(suggestions[0].time, SimTime::ZERO + period * 3);

    // The change sequence marks one change across the whole capture: the
    // duplicate never entered, so no index claims the same instant twice.
    let changes = suggester.change_sequence(&video, 0, video.len() as u32);
    assert_eq!(changes.iter().filter(|&&c| c).count(), 1);
    assert!(changes[3]);
}
