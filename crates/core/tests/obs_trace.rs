//! Observability contract tests: the recorder must never change what the
//! study measures, and everything it derives from simulated time must be
//! identical for any worker count. The wall-clock axis is allowed to vary
//! (that is its job); it lives in a separate trace process and report
//! section so these tests can pin down the deterministic remainder.

use interlag_core::experiment::{ConfigSummary, Lab, LabConfig, StudyResult};
use interlag_device::script::InteractionCategory;
use interlag_faults::FaultConfig;
use interlag_obs::Recorder;
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A fast two-interaction workload (the study sweeps 18 configurations,
/// so per-run cost dominates).
fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0x0b5e);
    b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
    b.think_ms(1_500, 2_000);
    b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("obs", "observability test workload")
}

fn faulted_lab(workers: usize, obs: Recorder) -> Lab {
    Lab::new(LabConfig {
        reps: 2,
        workers,
        faults: Some(FaultConfig::uniform(0x0b5e_55ed, 0.05)),
        obs,
        ..Default::default()
    })
}

/// Bit-level comparison of everything a study reports.
fn assert_studies_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.annotation, b.annotation);
    assert_eq!(a.db, b.db);
    assert_eq!(a.oracle_detail, b.oracle_detail);
    let (ca, cb): (Vec<&ConfigSummary>, Vec<&ConfigSummary>) =
        (a.all_configs().collect(), b.all_configs().collect());
    assert_eq!(ca.len(), cb.len());
    for (s, p) in ca.iter().zip(&cb) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.outcomes, p.outcomes, "{}", s.name);
        for (sr, pr) in s.reps.iter().zip(&p.reps) {
            assert_eq!(sr.profile, pr.profile, "{}", s.name);
            assert_eq!(sr.dynamic_energy_mj.to_bits(), pr.dynamic_energy_mj.to_bits());
            assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
        }
    }
}

#[test]
fn faulted_parallel_study_emits_a_valid_chrome_trace() {
    let obs = Recorder::enabled();
    let study = faulted_lab(4, obs.clone()).study(&small_workload()).expect("study");
    assert!(study.all_configs().count() > 0);

    let json = obs.chrome_trace_json();
    let doc: serde_json::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    // Every stage of the pipeline shows up as a complete span.
    let span_names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e["ph"] == "X")
        .map(|e| e["name"].as_str().expect("span name"))
        .collect();
    for expected in ["study", "annotate", "study-rep", "replay", "match", "irritate", "capture"] {
        assert!(span_names.contains(expected), "missing span {expected:?} in {span_names:?}");
    }

    // The wall-clock process carries one named track per pool worker.
    let thread_names: Vec<String> = events
        .iter()
        .filter(|e| e["name"] == "thread_name" && e["pid"] == 1)
        .map(|e| e["args"]["name"].as_str().expect("thread name").to_string())
        .collect();
    for w in 1..=4 {
        assert!(
            thread_names.iter().any(|n| n == &format!("worker {w}")),
            "missing worker {w} track in {thread_names:?}"
        );
    }

    // Complete events carry numeric timestamps and durations.
    for e in events.iter().filter(|e| e["ph"] == "X") {
        assert!(e["ts"].is_number(), "bad ts in {e}");
        assert!(e["dur"].is_number(), "bad dur in {e}");
    }

    // Both processes are present: wall clock (1) and simulated time (2).
    let pids: std::collections::BTreeSet<i64> =
        events.iter().map(|e| e["pid"].as_i64().expect("pid")).collect();
    assert_eq!(pids, [1, 2].into_iter().collect());
}

#[test]
fn recorder_never_changes_study_results() {
    let w = small_workload();
    let baseline = faulted_lab(1, Recorder::disabled()).study(&w).expect("study");
    for workers in [1usize, 4] {
        for obs in [Recorder::disabled(), Recorder::enabled()] {
            let study = faulted_lab(workers, obs).study(&w).expect("study");
            assert_studies_identical(&baseline, &study);
        }
    }
}

#[test]
fn sim_exports_are_byte_stable_across_worker_counts() {
    let w = small_workload();
    let (serial, parallel) = (Recorder::enabled(), Recorder::enabled());
    faulted_lab(1, serial.clone()).study(&w).expect("study");
    faulted_lab(4, parallel.clone()).study(&w).expect("study");
    assert_eq!(serial.chrome_trace_json_sim_only(), parallel.chrome_trace_json_sim_only());
    assert_eq!(serial.text_report_deterministic(), parallel.text_report_deterministic());
}
