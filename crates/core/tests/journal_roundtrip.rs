//! Property tests for the checkpoint codec: arbitrary repetition results
//! and outcomes survive the journal bit-exactly, and once framed, no
//! single-byte corruption slips past the checksum or is misparsed into a
//! different checkpoint.

use interlag_core::checkpoint::{
    decode_checkpoint, encode_checkpoint, CheckpointRecord, CHECKPOINT_VERSION,
};
use interlag_core::error::InterlagError;
use interlag_core::experiment::{RepOutcome, RepResult};
use interlag_core::ingest::DatasetError;
use interlag_core::matcher::MatchFailure;
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_device::DeviceError;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::{decode_records, encode_record};
use interlag_video::stream::VideoError;
use proptest::prelude::*;

/// Confidence values including the awkward ones: the codec ships the IEEE
/// bit pattern, so NaN and infinities must survive too.
fn confidence() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0f64..1.0,
        Just(1.0f64),
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE),
    ]
}

fn lag_entry() -> impl Strategy<Value = LagEntry> {
    (0usize..10_000, 0u64..86_400_000_000, 0u64..600_000_000, 0u64..5_000_000, confidence())
        .prop_map(|(id, input_us, lag_us, threshold_us, confidence)| LagEntry {
            interaction_id: id,
            input_time: SimTime::from_micros(input_us),
            lag: SimDuration::from_micros(lag_us),
            threshold: SimDuration::from_micros(threshold_us),
            confidence,
        })
}

fn rep_result() -> impl Strategy<Value = RepResult> {
    let name = prop_oneof![
        Just("ondemand".to_string()),
        Just("fixed-0.30 GHz".to_string()),
        Just("oracle".to_string()),
        (0u32..100).prop_map(|i| format!("config-{i}")),
    ];
    (
        name,
        proptest::collection::vec(lag_entry(), 0..20),
        0u64..u64::MAX, // raw IEEE bits: covers NaN payloads, denormals, infinities
        0u64..3_600_000_000,
        0usize..10,
        0usize..10,
    )
        .prop_map(
            |(name, entries, energy_bits, irritation_us, match_failures, input_faults)| {
                let mut profile = LagProfile::new(name);
                for e in entries {
                    profile.push(e);
                }
                RepResult {
                    profile,
                    dynamic_energy_mj: f64::from_bits(energy_bits),
                    irritation: SimDuration::from_micros(irritation_us),
                    match_failures,
                    input_faults,
                }
            },
        )
}

fn cause() -> impl Strategy<Value = InterlagError> {
    let match_failure = prop_oneof![
        Just(MatchFailure::NotAnnotated),
        Just(MatchFailure::EndingNotFound),
        Just(MatchFailure::Cancelled),
    ];
    prop_oneof![
        (0u64..1_000_000_000, 0u64..1_000_000_000).prop_map(|(prev_us, time_us)| {
            InterlagError::Device(DeviceError::Video(VideoError::NonMonotonicTimestamp {
                prev: SimTime::from_micros(prev_us),
                time: SimTime::from_micros(time_us),
            }))
        }),
        Just(InterlagError::Device(DeviceError::Cancelled)),
        (0usize..500, match_failure)
            .prop_map(|(interaction_id, failure)| InterlagError::Match { interaction_id, failure }),
        Just(InterlagError::MissingVideo),
        Just(InterlagError::Timeout),
        (0usize..1_000_000)
            .prop_map(|offset| InterlagError::Dataset(DatasetError::BadUtf8 { offset })),
    ]
}

fn rep_outcome() -> impl Strategy<Value = RepOutcome> {
    prop_oneof![
        Just(RepOutcome::Ok),
        (2u32..10).prop_map(|attempts| RepOutcome::Retried { attempts }),
        (1u32..10).prop_map(|attempts| RepOutcome::TimedOut { attempts }),
        (1u32..10, cause()).prop_map(|(attempts, cause)| RepOutcome::Abandoned { attempts, cause }),
    ]
}

/// Field-by-field, bit-exact equality for results (`RepResult` has no
/// `PartialEq`, and NaN energies would defeat one anyway).
fn assert_result_bits_equal(a: &RepResult, b: &RepResult) {
    assert_eq!(a.profile.config, b.profile.config);
    assert_eq!(a.profile.entries().len(), b.profile.entries().len());
    for (x, y) in a.profile.entries().iter().zip(b.profile.entries()) {
        assert_eq!(x.interaction_id, y.interaction_id);
        assert_eq!(x.input_time, y.input_time);
        assert_eq!(x.lag, y.lag);
        assert_eq!(x.threshold, y.threshold);
        assert_eq!(x.confidence.to_bits(), y.confidence.to_bits());
    }
    assert_eq!(a.dynamic_energy_mj.to_bits(), b.dynamic_energy_mj.to_bits());
    assert_eq!(a.irritation, b.irritation);
    assert_eq!(a.match_failures, b.match_failures);
    assert_eq!(a.input_faults, b.input_faults);
}

proptest! {
    #[test]
    fn checkpoints_round_trip_bit_exactly(
        fingerprint in 0u64..u64::MAX,
        config in 0usize..32,
        rep in 0u32..16,
        result in rep_result(),
        outcome in rep_outcome(),
    ) {
        let record = CheckpointRecord::new(fingerprint, config, rep, &result, &outcome);
        let payload = encode_checkpoint(&record);
        prop_assert!(
            !payload.contains(&b'\n'),
            "checkpoint payloads must be framable (newline-free)"
        );
        let back = decode_checkpoint(&payload).expect("a clean payload decodes");
        prop_assert_eq!(&back, &record);

        let (config2, rep2, result2, outcome2) = back.into_parts();
        prop_assert_eq!(config2, config);
        prop_assert_eq!(rep2, rep);
        prop_assert_eq!(&outcome2, &outcome);
        assert_result_bits_equal(&result2, &result);
    }

    #[test]
    fn framed_checkpoint_survives_no_single_byte_corruption(
        result in rep_result(),
        outcome in rep_outcome(),
        byte_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let record = CheckpointRecord::new(0x5eed, 3, 1, &result, &outcome);
        let payload = encode_checkpoint(&record);
        let framed = encode_record(&payload).expect("payload frames");

        let idx = ((framed.len() as f64 * byte_frac) as usize).min(framed.len() - 1);
        let mut corrupt = framed.clone();
        corrupt[idx] ^= flip; // XOR with a non-zero mask always changes the byte

        let out = decode_records(&corrupt);
        // The CRC covers the length prefix and the payload, so an 8-bit
        // burst anywhere in the frame is always caught: nothing decodes.
        for rec in &out.records {
            prop_assert_eq!(
                rec.as_slice(),
                payload.as_slice(),
                "corruption at byte {} was misparsed into a different record",
                idx
            );
        }
        prop_assert!(
            out.records.is_empty(),
            "single-byte corruption at byte {} escaped the checksum",
            idx
        );
    }

}

#[test]
fn version_mismatch_is_rejected_not_misread() {
    let result = RepResult {
        profile: LagProfile::new("ondemand"),
        dynamic_energy_mj: 1.5,
        irritation: SimDuration::ZERO,
        match_failures: 0,
        input_faults: 0,
    };
    let record = CheckpointRecord::new(1, 0, 0, &result, &RepOutcome::Ok);
    let payload = encode_checkpoint(&record);
    let text = std::str::from_utf8(&payload).expect("JSON is UTF-8");
    assert!(text.contains(&format!("\"version\":{CHECKPOINT_VERSION}")));
    let bumped = text.replace(
        &format!("\"version\":{CHECKPOINT_VERSION}"),
        &format!("\"version\":{}", CHECKPOINT_VERSION + 1),
    );
    assert!(decode_checkpoint(bumped.as_bytes()).is_none());
    assert!(decode_checkpoint(b"not json at all").is_none());
    assert!(decode_checkpoint(&[0xff, 0xfe, 0x00]).is_none());
}
