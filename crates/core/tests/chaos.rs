//! Chaos tests: the study pipeline under deterministic fault injection.
//!
//! The fault harness exists to answer two questions the clean-path tests
//! cannot: does the self-healing study loop keep a realistic fault rate
//! from sinking a whole study, and does turning every fault off really
//! leave the pipeline byte-for-byte untouched? Both are answerable only
//! because every injected failure is a pure function of
//! `(seed, config, rep, attempt)`.

use interlag_core::experiment::{ConfigSummary, Lab, LabConfig, RepOutcome, StudyResult};
use interlag_device::script::InteractionCategory;
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::SimDuration;
use interlag_faults::FaultConfig;
use interlag_workloads::gen::{Workload, WorkloadBuilder, MCYCLES};

/// A fast two-interaction workload: chaos studies run the full
/// 18-configuration matrix, so the per-run cost must stay small.
fn small_workload() -> Workload {
    let mut b = WorkloadBuilder::new(0xc4a05);
    b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
    b.think_ms(1_500, 2_000);
    b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
    b.build("chaos", "chaos-study workload")
}

fn lab_with_faults(faults: Option<FaultConfig>, retry_budget: u32, workers: usize) -> Lab {
    Lab::new(LabConfig { reps: 2, faults, retry_budget, workers, ..Default::default() })
}

/// Bit-level comparison of two study results: every value the study
/// reports, not merely approximately equal.
fn assert_studies_identical(a: &StudyResult, b: &StudyResult) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.annotation, b.annotation);
    assert_eq!(a.db, b.db);
    assert_eq!(a.oracle_detail, b.oracle_detail);
    let (ca, cb): (Vec<&ConfigSummary>, Vec<&ConfigSummary>) =
        (a.all_configs().collect(), b.all_configs().collect());
    assert_eq!(ca.len(), cb.len());
    for (s, p) in ca.iter().zip(&cb) {
        assert_eq!(s.name, p.name);
        assert_eq!(s.freq, p.freq);
        assert_eq!(s.outcomes, p.outcomes, "{}", s.name);
        assert_eq!(s.reps.len(), p.reps.len(), "{}", s.name);
        for (sr, pr) in s.reps.iter().zip(&p.reps) {
            assert_eq!(sr.profile, pr.profile, "{}", s.name);
            assert_eq!(sr.dynamic_energy_mj.to_bits(), pr.dynamic_energy_mj.to_bits());
            assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
            assert_eq!(sr.match_failures, pr.match_failures, "{}", s.name);
            assert_eq!(sr.input_faults, pr.input_faults, "{}", s.name);
        }
    }
}

#[test]
fn chaos_study_completes_with_bounded_abandonment() {
    // A realistic ~5 % fault rate at every stage boundary: the study must
    // still complete, and the retry budget must keep the abandonment rate
    // bounded — the acceptance bar is ≥ 90 % of repetitions ok or retried.
    let w = small_workload();
    let lab = lab_with_faults(Some(FaultConfig::uniform(0xc4a0_55ed, 0.05)), 2, 2);
    let study = lab.study(&w).expect("chaos study completes");

    let mut total = 0usize;
    let mut survived = 0usize;
    let mut retried = 0usize;
    for c in study.all_configs() {
        assert_eq!(c.outcomes.len(), c.reps.len(), "{}", c.name);
        for (rep_idx, o) in c.outcomes.iter().enumerate() {
            total += 1;
            match o {
                RepOutcome::Ok => survived += 1,
                RepOutcome::Retried { attempts } => {
                    survived += 1;
                    retried += 1;
                    assert!(
                        (2..=3).contains(attempts),
                        "{}: retried outcome with {attempts} attempts",
                        c.name
                    );
                }
                RepOutcome::Abandoned { attempts, cause } => {
                    // Every abandoned repetition reports how hard it tried
                    // and why the last attempt failed…
                    assert_eq!(*attempts, 3, "{}: budget is 2 retries", c.name);
                    assert!(!format!("{cause}").is_empty());
                    // …and its placeholder slot is empty, excluded from
                    // the aggregates via `measured()`.
                    assert!(c.reps[rep_idx].profile.is_empty());
                }
                RepOutcome::TimedOut { .. } => {
                    // The uniform chaos config injects no wall-clock
                    // wedges, so the watchdog never fires here.
                    panic!("{}: unexpected watchdog timeout", c.name);
                }
                RepOutcome::Skipped => {
                    // Skipped slots exist only inside a sharded sweep's
                    // scoped agents, never in a whole local study.
                    panic!("{}: unexpected skipped repetition", c.name);
                }
            }
        }
        // Abandonment never swallows a whole configuration here: the
        // aggregates always have at least one surviving repetition.
        assert!(c.measured().count() >= 1, "{}: all reps abandoned", c.name);
    }
    assert_eq!(total, 18 * 2);
    assert!(
        survived * 10 >= total * 9,
        "only {survived}/{total} repetitions survived ({retried} via retry)"
    );
    // With faults on, summaries switch to outlier-rejected aggregation.
    assert!(study.all_configs().all(|c| c.robust));
}

#[test]
fn chaos_outcomes_are_reproducible() {
    // Same seed, same fault pattern, same retries, same abandonments —
    // a failure report is a repro recipe, not an anecdote.
    let w = small_workload();
    let fc = FaultConfig::uniform(77, 0.05);
    let a = lab_with_faults(Some(fc), 2, 2).study(&w).expect("study a");
    let b = lab_with_faults(Some(fc), 2, 2).study(&w).expect("study b");
    assert_studies_identical(&a, &b);
}

#[test]
fn brutal_corruption_abandons_reps_with_causes() {
    // Corrupt every captured frame beyond what the matcher's escalation
    // ladder can absorb, and grant no retries: repetitions must be
    // abandoned — visibly, with a cause — rather than panic or silently
    // report garbage. (At partial corruption rates the matcher shrugs the
    // faults off entirely: a lag ending persists on screen for many
    // frames, so the walk skips corrupted captures until a clean one of
    // the same still matches.)
    let w = small_workload();
    let mut fc = FaultConfig::quiescent(0xdead);
    fc.capture.corrupt_rate = 1.0;
    fc.capture.corrupt_pixels = 2_048;
    let lab = lab_with_faults(Some(fc), 0, 2);
    let study = lab.study(&w).expect("study still completes");

    let abandoned: usize = study.all_configs().map(|c| c.abandoned()).sum();
    assert!(abandoned > 0, "total corruption with no retries must abandon something");
    for c in study.all_configs() {
        for o in &c.outcomes {
            if let RepOutcome::Abandoned { attempts, cause } = o {
                assert_eq!(*attempts, 1, "retry budget is zero");
                assert!(format!("{cause}").contains("failed"), "cause: {cause}");
            }
        }
        // The annotation reference run is fault-exempt, so the fastest
        // fixed configuration's first repetition always survives…
        if c.name == study.fixed.last().map(|f| f.name.as_str()).unwrap_or_default() {
            assert_eq!(c.outcomes[0], RepOutcome::Ok);
        }
        // …and abandoned placeholders never leak into the aggregates.
        let measured = c.measured().count();
        assert_eq!(measured + c.abandoned(), c.reps.len());
        if measured > 0 {
            assert!(c.mean_irritation() < SimDuration::from_secs(3_600));
        }
    }
}

/// Property: a quiescent fault configuration — injection plumbed through
/// every stage boundary, but every rate zero — is byte-identical to
/// running with no fault harness at all, at any worker count. Fault
/// injection must cost nothing when it is off.
///
/// A study is far too expensive for proptest's 64-case default, so this
/// sweeps a small deterministic sample of the input space by hand: fault
/// seeds drawn from [`SplitMix64`], crossed with serial and parallel
/// worker counts, against one clean baseline per worker count.
#[test]
fn quiescent_faults_are_bit_identical_to_none_at_any_worker_count() {
    let w = small_workload();
    let mut seeds = SplitMix64::new(0x0b17_1d3a);
    for workers in [1usize, 4] {
        let clean = lab_with_faults(None, 2, workers).study(&w).expect("clean study");
        for _ in 0..2 {
            let seed = seeds.next_u64();
            let quiescent = lab_with_faults(Some(FaultConfig::quiescent(seed)), 2, workers)
                .study(&w)
                .expect("quiescent study");
            assert_studies_identical(&clean, &quiescent);
            // Quiescent studies keep the legacy plain-mean aggregation and
            // succeed on every first attempt.
            assert!(quiescent.all_configs().all(|c| !c.robust));
            assert!(quiescent
                .all_configs()
                .all(|c| c.outcomes.iter().all(|o| *o == RepOutcome::Ok)));
        }
    }
}
