//! Property tests for the property-group grammar: printing inverts
//! parsing, interval expansion hits its declared totals, and malformed
//! groups are rejected with byte-offset diagnostics.

use proptest::prelude::*;

use interlag_core::propgroup::{PropErrorKind, PropGroup};

/// A pool of valid key tokens (separator-free, distinct, none of them an
/// interval suffix of another).
const KEYS: [&str; 6] = ["alpha", "beta", "gamma", "jitter-us", "reps", "workload"];
/// A pool of valid value tokens.
const VALUES: [&str; 6] = ["1", "20", "ondemand", "sim14", "p95-lag", "x-y.z"];

/// Random well-formed groups: 1–4 distinct keys, each with 1–3 values.
fn arb_group() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (0usize..KEYS.len(), prop::collection::vec(0usize..VALUES.len(), 1..4)),
        1..5,
    )
    .prop_map(|pairs| {
        let mut used = Vec::new();
        let mut parts = Vec::new();
        for (k, vs) in pairs {
            if used.contains(&k) {
                continue; // keys must be unique; drop collisions
            }
            used.push(k);
            // Distinct values per key: repeated values are legal but
            // would make expanded points collide.
            let mut seen = Vec::new();
            let values: Vec<&str> = vs
                .iter()
                .filter(|&&v| {
                    let fresh = !seen.contains(&v);
                    seen.push(v);
                    fresh
                })
                .map(|&v| VALUES[v])
                .collect();
            parts.push(format!("{}={}", KEYS[k], values.join(",")));
        }
        // The first pair always survives dedup, so the group is
        // never empty.
        parts.join(":")
    })
}

proptest! {
    /// Canonical printing is the exact inverse of parsing: the grammar
    /// has one spelling per group, which is what makes groups usable as
    /// database keys.
    #[test]
    fn print_inverts_parse(text in arb_group()) {
        let group: PropGroup = text.parse().expect("generated groups are well-formed");
        prop_assert_eq!(group.to_string(), text);
    }

    /// Parsing is idempotent through the printed form.
    #[test]
    fn reparse_is_identity(text in arb_group()) {
        let group: PropGroup = text.parse().unwrap();
        let again: PropGroup = group.to_string().parse().unwrap();
        prop_assert_eq!(again, group);
    }

    /// The expanded matrix always has exactly `∏ per-key value counts`
    /// points, every point binds every key, and the points are distinct.
    #[test]
    fn expansion_total_is_the_product_of_value_counts(text in arb_group()) {
        let group: PropGroup = text.parse().unwrap();
        let expected: usize = group.pairs().iter().map(|(_, vs)| vs.len()).product();
        let points = group.expand().expect("no interval trios in this pool");
        prop_assert_eq!(points.len(), expected);
        for point in &points {
            prop_assert_eq!(point.pairs().len(), group.pairs().len());
            for (key, values) in group.pairs() {
                let bound = point.get(key).expect("every key bound");
                prop_assert!(values.iter().any(|v| v == bound));
            }
        }
        let mut rendered: Vec<String> = points.iter().map(|p| p.to_string()).collect();
        rendered.sort_unstable();
        rendered.dedup();
        prop_assert_eq!(rendered.len(), points.len(), "points are distinct");
    }

    /// Interval trios expand to exactly `intvs` non-decreasing values
    /// with both endpoints exact.
    #[test]
    fn interval_expansion_hits_its_declared_shape(
        min in 0u64..1_000,
        span in 1u64..10_000,
        intvs in 2u64..12,
    ) {
        let max = min + span;
        let text = format!("x-min={min}:x-max={max}:x-intvs={intvs}");
        let group: PropGroup = text.parse().unwrap();
        let points = group.expand().expect("well-formed trio");
        prop_assert_eq!(points.len(), intvs as usize);
        let values: Vec<u64> = points.iter().map(|p| p.get_u64("x").unwrap()).collect();
        prop_assert_eq!(values[0], min, "first value is the declared min");
        prop_assert_eq!(*values.last().unwrap(), max, "last value is the declared max");
        prop_assert!(values.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        prop_assert!(values.iter().all(|&v| (min..=max).contains(&v)), "in range");
    }

    /// A malformed pair spliced into a valid group is rejected with the
    /// byte offset of the splice point.
    #[test]
    fn malformed_pairs_are_rejected_at_their_offset(
        prefix in arb_group(),
        bad in 0usize..4,
    ) {
        let bad_pair = ["novalue", "=orphan", "a b=1", "dup"][bad];
        // "dup" duplicates the first key of the prefix.
        let bad_pair = if bad_pair == "dup" {
            let first = prefix.split('=').next().unwrap();
            format!("{first}=again")
        } else {
            bad_pair.to_string()
        };
        let text = format!("{prefix}:{bad_pair}");
        let err = text.parse::<PropGroup>().expect_err("the spliced pair is malformed");
        prop_assert_eq!(err.offset, prefix.len() + 1, "offset points at the spliced pair");
        let expected = match bad {
            0 => PropErrorKind::MissingEquals,
            1 => PropErrorKind::EmptyKey,
            2 => PropErrorKind::BadKey,
            _ => PropErrorKind::DuplicateKey,
        };
        prop_assert_eq!(err.kind, expected);
    }

    /// Empty values are rejected at the offset of the empty slot.
    #[test]
    fn empty_values_are_rejected_at_their_offset(prefix in arb_group()) {
        let text = format!("{prefix}:zkey=ok,");
        let err = text.parse::<PropGroup>().expect_err("trailing comma leaves an empty value");
        prop_assert_eq!(err.kind, PropErrorKind::EmptyValue);
        prop_assert_eq!(err.offset, prefix.len() + 1 + "zkey=ok,".len());
    }
}

#[test]
fn the_issue_example_expands_as_documented() {
    let g: PropGroup = "vrate-min=20:vrate-max=100:vrate-intvs=5".parse().unwrap();
    let values: Vec<u64> =
        g.expand().unwrap().iter().map(|p| p.get_u64("vrate").unwrap()).collect();
    assert_eq!(values, [20, 40, 60, 80, 100]);
}
