//! The matcher: fully automatic markup of workload videos (§II-E).
//!
//! Given a video of *any* execution of an annotated workload and the
//! timestamps of its inputs, the matcher walks the frames from each lag
//! beginning and finds the first frame matching the annotated ending image
//! (at the annotated occurrence, under the annotated mask and tolerance).
//! The output is the lag profile — one measured lag length per
//! interaction — with zero human involvement, which is what makes the
//! 85-execution studies of §III affordable.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::CancelToken;
use interlag_obs::{Counter, Hist, Recorder, DISABLED};
use interlag_video::arena::PackedVideo;
use interlag_video::frame::FrameBuffer;
use interlag_video::mask::{CompiledMask, MatchTolerance};
use interlag_video::stream::VideoStream;

use crate::annotation::{AnnotationDb, LagAnnotation};
use crate::profile::{LagEntry, LagProfile};

/// One matched lag ending.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchedLag {
    /// The interaction whose ending was found.
    pub interaction_id: usize,
    /// Index of the ending frame.
    pub end_frame: u32,
    /// Presentation time of the ending frame.
    pub end_time: SimTime,
    /// The measured interaction lag (ending frame time − input time).
    pub lag: SimDuration,
    /// How trustworthy the match is: `1.0` when found at the annotated
    /// tolerance, lower for every escalation step a [`MatchPolicy`] had to
    /// take to find it.
    pub confidence: f64,
}

/// Why a lag could not be matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchFailure {
    /// The interaction has no annotation in the database.
    NotAnnotated,
    /// The video ended before the annotated image appeared (the run's
    /// slack was too short, or the system never serviced the input).
    EndingNotFound,
    /// A watchdog cancellation token fired mid-walk; the verdict is
    /// unknown, not negative.
    Cancelled,
}

/// How the matcher recovers when a lag's ending cannot be found at the
/// annotated tolerance.
///
/// A corrupted or noisy capture can leave the annotated ending image a few
/// pixels away from every frame of the video. Rather than abandoning the
/// repetition outright, the policy retries the walk with progressively
/// looser tolerances; a match found on escalation step *i* carries
/// confidence `1 / (i + 2)` so downstream consumers can weigh (or reject)
/// weakly-matched lags. The escalation ladder is bounded — a screen that
/// genuinely never shows the ending still reports
/// [`MatchFailure::EndingNotFound`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchPolicy {
    /// Tolerances to try, in order, after the annotated one fails. Each
    /// step is taken component-wise: the effective tolerance never drops
    /// below the annotation's own.
    pub escalation: Vec<MatchTolerance>,
}

impl MatchPolicy {
    /// No recovery: the annotated tolerance decides, exactly as the paper's
    /// pipeline behaves on a clean HDMI capture.
    pub fn strict() -> Self {
        MatchPolicy { escalation: Vec::new() }
    }

    /// The recovery ladder used by fault-injected studies: three steps that
    /// widen only the *pixel budget*, sized to absorb the bit-flip
    /// corruption the capture-fault model injects (a handful of pixels with
    /// arbitrary value error). The value tolerance stays at the
    /// annotation's own — widening it would let genuinely different UI
    /// states whose fills differ by a few grey levels false-match, which is
    /// worse than an honest failure.
    pub fn paper_recovery() -> Self {
        MatchPolicy {
            escalation: vec![
                MatchTolerance { value_tolerance: 0, pixel_budget: 4 },
                MatchTolerance { value_tolerance: 0, pixel_budget: 16 },
                MatchTolerance { value_tolerance: 0, pixel_budget: 48 },
            ],
        }
    }
}

impl Default for MatchPolicy {
    fn default() -> Self {
        MatchPolicy::strict()
    }
}

/// How many frames the walk advances between watchdog polls. A poll is
/// one relaxed atomic load (plus a clock read until the deadline latches),
/// so the stride mainly bounds cancellation latency: at most this many
/// frame comparisons happen after the deadline passes.
pub const MATCH_CANCEL_STRIDE: u64 = 256;

/// The matcher algorithm.
///
/// # Examples
///
/// See [`mark_up`] and the crate-level documentation; unit tests below
/// exercise the occurrence logic directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Matcher;

impl Matcher {
    /// Creates a matcher.
    pub fn new() -> Self {
        Matcher
    }

    /// Finds the ending of one lag: the first frame at/after `input_time`
    /// whose contents match the annotation, honouring the annotated
    /// occurrence count (a run of consecutive matching frames is one
    /// occurrence).
    ///
    /// # Errors
    ///
    /// [`MatchFailure::EndingNotFound`] if the video ends first.
    pub fn match_lag(
        &self,
        video: &VideoStream,
        input_time: SimTime,
        annotation: &LagAnnotation,
    ) -> Result<MatchedLag, MatchFailure> {
        self.match_at(
            video,
            input_time,
            annotation,
            annotation.tolerance,
            1.0,
            &DISABLED,
            &CancelToken::none(),
        )
    }

    /// Like [`Matcher::match_lag`], but when the annotated tolerance finds
    /// nothing the walk is retried along `policy`'s escalation ladder; the
    /// returned confidence records how far the ladder had to go.
    ///
    /// # Errors
    ///
    /// [`MatchFailure::EndingNotFound`] if even the loosest escalation step
    /// fails.
    pub fn match_lag_with_policy(
        &self,
        video: &VideoStream,
        input_time: SimTime,
        annotation: &LagAnnotation,
        policy: &MatchPolicy,
    ) -> Result<MatchedLag, MatchFailure> {
        self.match_lag_with_policy_observed(video, input_time, annotation, policy, &DISABLED)
    }

    /// [`Matcher::match_lag_with_policy`] with telemetry: escalation-ladder
    /// steps taken are counted into `rec`, and a successful match records
    /// the ladder depth it was found at (0 = the annotated tolerance).
    ///
    /// # Errors
    ///
    /// As for [`Matcher::match_lag_with_policy`].
    pub fn match_lag_with_policy_observed(
        &self,
        video: &VideoStream,
        input_time: SimTime,
        annotation: &LagAnnotation,
        policy: &MatchPolicy,
        rec: &Recorder,
    ) -> Result<MatchedLag, MatchFailure> {
        self.match_lag_cancellable(video, input_time, annotation, policy, rec, &CancelToken::none())
    }

    /// [`Matcher::match_lag_with_policy_observed`] under a watchdog: the
    /// walk and the escalation ladder both poll `cancel` and abort with
    /// [`MatchFailure::Cancelled`] once it fires.
    ///
    /// # Errors
    ///
    /// As for [`Matcher::match_lag_with_policy`], plus
    /// [`MatchFailure::Cancelled`].
    pub fn match_lag_cancellable(
        &self,
        video: &VideoStream,
        input_time: SimTime,
        annotation: &LagAnnotation,
        policy: &MatchPolicy,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<MatchedLag, MatchFailure> {
        match self.match_at(video, input_time, annotation, annotation.tolerance, 1.0, rec, cancel) {
            Err(MatchFailure::EndingNotFound) => {
                for (i, step) in policy.escalation.iter().enumerate() {
                    if cancel.is_cancelled() {
                        return Err(MatchFailure::Cancelled);
                    }
                    let tolerance = MatchTolerance {
                        value_tolerance: step
                            .value_tolerance
                            .max(annotation.tolerance.value_tolerance),
                        pixel_budget: step.pixel_budget.max(annotation.tolerance.pixel_budget),
                    };
                    let confidence = 1.0 / (i + 2) as f64;
                    rec.count(Counter::MatchEscalations, 1);
                    match self
                        .match_at(video, input_time, annotation, tolerance, confidence, rec, cancel)
                    {
                        Ok(m) => {
                            rec.observe(Hist::EscalationDepth, i as u64 + 1);
                            return Ok(m);
                        }
                        Err(MatchFailure::Cancelled) => return Err(MatchFailure::Cancelled),
                        Err(_) => {}
                    }
                }
                Err(MatchFailure::EndingNotFound)
            }
            verdict => {
                if verdict.is_ok() {
                    rec.observe(Hist::EscalationDepth, 0);
                }
                verdict
            }
        }
    }

    /// The frame walk at one explicit tolerance. Walk length and
    /// verdict-cache traffic are accumulated locally and flushed to `rec`
    /// once per walk, so the per-frame path stays allocation- and
    /// atomics-free; the cancel token is polled every
    /// [`MATCH_CANCEL_STRIDE`] frames for the same reason.
    #[allow(clippy::too_many_arguments)]
    fn match_at(
        &self,
        video: &VideoStream,
        input_time: SimTime,
        annotation: &LagAnnotation,
        tolerance: MatchTolerance,
        confidence: f64,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<MatchedLag, MatchFailure> {
        let first = video.first_frame_at_or_after(input_time);
        let mut remaining = annotation.occurrence.max(1);
        let mut in_match = false;
        // Compile the mask's rectangle list once for the whole walk; every
        // frame comparison then runs over precomputed included spans.
        let compiled = annotation.mask.compile(annotation.image.width(), annotation.image.height());
        // The capture pipeline reuses one buffer for every frame of a
        // still period and a blinking UI oscillates between a handful of
        // buffers, so most frames are pointer-identical to one already
        // judged: memoise the verdict per unique buffer, with the
        // immediately-previous pointer checked first (the still-period
        // case) before falling back to the map.
        let mut last: Option<(*const FrameBuffer, bool)> = None;
        let mut verdicts: HashMap<*const FrameBuffer, bool> = HashMap::new();
        let (mut walked, mut hit_last, mut hit_map, mut missed) = (0u64, 0u64, 0u64, 0u64);
        let result = 'walk: {
            for frame in &video.frames()[first as usize..] {
                // The annotation image has its mask burned in; apply the same
                // masking to the candidate by comparing under the mask (the
                // mask zeroes the same pixels on both sides, and masked
                // comparison ignores them anyway).
                if walked % MATCH_CANCEL_STRIDE == 0 && cancel.is_cancelled() {
                    break 'walk Err(MatchFailure::Cancelled);
                }
                walked += 1;
                let key = Arc::as_ptr(&frame.buf);
                let matches = match last {
                    Some((prev, verdict)) if prev == key => {
                        hit_last += 1;
                        verdict
                    }
                    _ => match verdicts.get(&key) {
                        Some(&verdict) => {
                            hit_map += 1;
                            verdict
                        }
                        None => {
                            missed += 1;
                            let verdict = tolerance.matches_compiled(
                                &compiled,
                                &annotation.image,
                                &frame.buf,
                            );
                            verdicts.insert(key, verdict);
                            verdict
                        }
                    },
                };
                last = Some((key, matches));
                if matches && !in_match {
                    remaining -= 1;
                    if remaining == 0 {
                        break 'walk Ok(MatchedLag {
                            interaction_id: annotation.interaction_id,
                            end_frame: frame.index,
                            end_time: frame.time,
                            lag: frame.time.saturating_since(input_time),
                            confidence,
                        });
                    }
                }
                in_match = matches;
            }
            Err(MatchFailure::EndingNotFound)
        };
        rec.observe(Hist::MatchWalkFrames, walked);
        rec.count(Counter::VerdictCacheHitLast, hit_last);
        rec.count(Counter::VerdictCacheHitMap, hit_map);
        rec.count(Counter::VerdictCacheMiss, missed);
        result
    }
}

/// Marks up a whole video: produces the lag profile of one execution.
///
/// `lag_beginnings` are `(interaction id, input time)` pairs, e.g. from
/// [`RunArtifacts::lag_beginnings`](interlag_device::device::RunArtifacts::lag_beginnings)
/// or — on real traces — from the input classifier. Failures are reported
/// alongside the profile rather than silently dropped.
pub fn mark_up(
    video: &VideoStream,
    lag_beginnings: &[(usize, SimTime)],
    db: &AnnotationDb,
    config_name: &str,
) -> (LagProfile, Vec<(usize, MatchFailure)>) {
    mark_up_with_policy(video, lag_beginnings, db, config_name, &MatchPolicy::strict())
}

/// [`mark_up`] with tolerance-escalation recovery: lags the annotated
/// tolerance cannot resolve are retried along `policy`'s ladder, and each
/// profile entry records the confidence of its match. With
/// [`MatchPolicy::strict`] this is exactly [`mark_up`].
pub fn mark_up_with_policy(
    video: &VideoStream,
    lag_beginnings: &[(usize, SimTime)],
    db: &AnnotationDb,
    config_name: &str,
    policy: &MatchPolicy,
) -> (LagProfile, Vec<(usize, MatchFailure)>) {
    mark_up_with_policy_observed(video, lag_beginnings, db, config_name, policy, &DISABLED)
}

/// [`mark_up_with_policy`] with telemetry: resolved and failed lags, walk
/// lengths, verdict-cache traffic and escalation depths are recorded into
/// `rec`. With a disabled recorder this is exactly
/// [`mark_up_with_policy`].
pub fn mark_up_with_policy_observed(
    video: &VideoStream,
    lag_beginnings: &[(usize, SimTime)],
    db: &AnnotationDb,
    config_name: &str,
    policy: &MatchPolicy,
    rec: &Recorder,
) -> (LagProfile, Vec<(usize, MatchFailure)>) {
    mark_up_cancellable(video, lag_beginnings, db, config_name, policy, rec, &CancelToken::none())
}

/// [`mark_up_with_policy_observed`] under a watchdog: once `cancel` fires,
/// the current walk aborts and every remaining lag is reported as
/// [`MatchFailure::Cancelled`] without being walked — the caller is about
/// to discard the repetition, so finishing the markup would only delay the
/// cancellation it asked for.
///
/// All lags of the call share one [`BatchMatcher`]: the video is packed in
/// a single forward walk and every lag is resolved against the packed
/// runs, so frame contents are compared at most once per (interaction,
/// tolerance) no matter how many lags or escalation retries walk past
/// them. Results are bit-identical to matching each lag separately with
/// [`Matcher::match_lag_cancellable`].
pub fn mark_up_cancellable(
    video: &VideoStream,
    lag_beginnings: &[(usize, SimTime)],
    db: &AnnotationDb,
    config_name: &str,
    policy: &MatchPolicy,
    rec: &Recorder,
    cancel: &CancelToken,
) -> (LagProfile, Vec<(usize, MatchFailure)>) {
    let mut batch = BatchMatcher::new(video);
    let mut profile = LagProfile::new(config_name);
    let mut failures = Vec::new();
    for &(id, input_time) in lag_beginnings {
        if cancel.is_cancelled() {
            failures.push((id, MatchFailure::Cancelled));
            continue;
        }
        match db.get(id) {
            None => failures.push((id, MatchFailure::NotAnnotated)),
            Some(annotation) => {
                match batch.match_lag(input_time, annotation, policy, rec, cancel) {
                    Ok(m) => profile.push(LagEntry {
                        interaction_id: id,
                        input_time,
                        lag: m.lag,
                        threshold: annotation.threshold,
                        confidence: m.confidence,
                    }),
                    Err(f) => failures.push((id, f)),
                }
            }
        }
    }
    rec.count(Counter::MatchLags, profile.len() as u64);
    rec.count(Counter::MatchFailures, failures.len() as u64);
    (profile, failures)
}

/// The batched matching engine behind [`mark_up_cancellable`].
///
/// The per-lag [`Matcher`] walks the video frame by frame for every lag,
/// re-judging content it has already seen on earlier lags. The batch
/// engine instead packs the stream once — one forward walk deduplicating
/// every frame content into a [`FrameArena`](interlag_video::FrameArena)
/// and run-length encoding the sequence — and then resolves each lag by
/// walking the content *runs*: O(distinct contents) comparisons and
/// O(runs) verdict lookups per lag, instead of O(frames) pointer chases.
/// Verdicts are memoised per arena slot in dense vectors keyed by
/// (interaction, effective tolerance), so escalation retries and repeated
/// interactions reuse every verdict already computed.
///
/// Matching semantics are exactly the per-lag matcher's: a run of
/// consecutive matching frames is one occurrence, the walk starts at the
/// first frame at/after the input time, and a match lands on the first
/// frame of the occurrence (clipped to the walk's start when it begins
/// mid-run).
struct BatchMatcher<'a> {
    video: &'a VideoStream,
    packed: PackedVideo,
    /// Compiled masks, one per annotated interaction.
    compiled: HashMap<usize, CompiledMask>,
    /// Slot verdicts per (interaction id, value tolerance, pixel budget):
    /// dense over arena slots so a lookup is an index, not a hash.
    verdicts: HashMap<(usize, u8, u64), Vec<Option<bool>>>,
}

impl<'a> BatchMatcher<'a> {
    /// Packs the video (the one forward walk) and readies empty caches.
    fn new(video: &'a VideoStream) -> Self {
        BatchMatcher {
            video,
            packed: PackedVideo::pack(video),
            compiled: HashMap::new(),
            verdicts: HashMap::new(),
        }
    }

    /// [`Matcher::match_lag_cancellable`], resolved against the packed
    /// runs: identical escalation ladder, confidence and telemetry.
    fn match_lag(
        &mut self,
        input_time: SimTime,
        annotation: &LagAnnotation,
        policy: &MatchPolicy,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<MatchedLag, MatchFailure> {
        match self.walk(input_time, annotation, annotation.tolerance, 1.0, rec, cancel) {
            Err(MatchFailure::EndingNotFound) => {
                for (i, step) in policy.escalation.iter().enumerate() {
                    if cancel.is_cancelled() {
                        return Err(MatchFailure::Cancelled);
                    }
                    let tolerance = MatchTolerance {
                        value_tolerance: step
                            .value_tolerance
                            .max(annotation.tolerance.value_tolerance),
                        pixel_budget: step.pixel_budget.max(annotation.tolerance.pixel_budget),
                    };
                    let confidence = 1.0 / (i + 2) as f64;
                    rec.count(Counter::MatchEscalations, 1);
                    match self.walk(input_time, annotation, tolerance, confidence, rec, cancel) {
                        Ok(m) => {
                            rec.observe(Hist::EscalationDepth, i as u64 + 1);
                            return Ok(m);
                        }
                        Err(MatchFailure::Cancelled) => return Err(MatchFailure::Cancelled),
                        Err(_) => {}
                    }
                }
                Err(MatchFailure::EndingNotFound)
            }
            verdict => {
                if verdict.is_ok() {
                    rec.observe(Hist::EscalationDepth, 0);
                }
                verdict
            }
        }
    }

    /// The run walk at one explicit tolerance — the batched analogue of
    /// [`Matcher::match_at`]. Telemetry mirrors the per-frame walk:
    /// `MatchWalkFrames` counts the frames the per-frame walk would have
    /// visited, misses are verdicts actually computed, and frames beyond
    /// the first of a run count as last-pointer hits (they are the same
    /// still period the pointer cache absorbs).
    fn walk(
        &mut self,
        input_time: SimTime,
        annotation: &LagAnnotation,
        tolerance: MatchTolerance,
        confidence: f64,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<MatchedLag, MatchFailure> {
        let first = self.video.first_frame_at_or_after(input_time);
        let mut remaining = annotation.occurrence.max(1);
        let mut in_match = false;
        let compiled = self.compiled.entry(annotation.interaction_id).or_insert_with(|| {
            annotation.mask.compile(annotation.image.width(), annotation.image.height())
        });
        let arena = self.packed.arena();
        let cache = self
            .verdicts
            .entry((annotation.interaction_id, tolerance.value_tolerance, tolerance.pixel_budget))
            .or_insert_with(|| vec![None; arena.len()]);
        let (mut walked, mut hit_last, mut hit_map, mut missed) = (0u64, 0u64, 0u64, 0u64);
        let result = 'walk: {
            for run in &self.packed.runs()[self.packed.run_of_frame(first)..] {
                // One poll per run bounds cancellation latency at one
                // frame comparison, tighter than the per-frame stride.
                if cancel.is_cancelled() {
                    break 'walk Err(MatchFailure::Cancelled);
                }
                let overlap_first = run.first_frame.max(first);
                let overlap_len = (run.first_frame + run.len - overlap_first) as u64;
                let matches = match cache[run.slot as usize] {
                    Some(verdict) => {
                        hit_map += 1;
                        verdict
                    }
                    None => {
                        missed += 1;
                        let verdict = tolerance.matches_pixels(
                            compiled,
                            &annotation.image,
                            arena.pixels(run.slot),
                            arena.digest(run.slot),
                        );
                        cache[run.slot as usize] = Some(verdict);
                        verdict
                    }
                };
                if matches && !in_match {
                    remaining -= 1;
                    if remaining == 0 {
                        walked += 1;
                        let frame = &self.video.frames()[overlap_first as usize];
                        break 'walk Ok(MatchedLag {
                            interaction_id: annotation.interaction_id,
                            end_frame: frame.index,
                            end_time: frame.time,
                            lag: frame.time.saturating_since(input_time),
                            confidence,
                        });
                    }
                }
                walked += overlap_len;
                hit_last += overlap_len - 1;
                in_match = matches;
            }
            Err(MatchFailure::EndingNotFound)
        };
        rec.observe(Hist::MatchWalkFrames, walked);
        rec.count(Counter::VerdictCacheHitLast, hit_last);
        rec.count(Counter::VerdictCacheHitMap, hit_map);
        rec.count(Counter::VerdictCacheMiss, missed);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_video::frame::FrameBuffer;
    use interlag_video::mask::{Mask, MatchTolerance};
    use interlag_video::stream::FRAME_PERIOD_30FPS;
    use std::sync::Arc;

    fn frame(v: u8) -> Arc<FrameBuffer> {
        let mut f = FrameBuffer::new(8, 8);
        f.fill(v);
        Arc::new(f)
    }

    fn video_of(pattern: &str) -> VideoStream {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        for (i, c) in pattern.chars().enumerate() {
            v.push(SimTime::from_micros(i as u64 * 33_333), frame(c as u8)).unwrap();
        }
        v
    }

    fn annotation_of(c: char, occurrence: u32) -> LagAnnotation {
        let mut img = FrameBuffer::new(8, 8);
        img.fill(c as u8);
        LagAnnotation {
            interaction_id: 0,
            image: img,
            mask: Mask::new(),
            tolerance: MatchTolerance::EXACT,
            occurrence,
            threshold: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn finds_first_occurrence() {
        let v = video_of("aaabbb");
        let m = Matcher::new();
        let hit = m.match_lag(&v, SimTime::ZERO, &annotation_of('b', 1)).unwrap();
        assert_eq!(hit.end_frame, 3);
        assert_eq!(hit.lag, SimDuration::from_micros(3 * 33_333));
    }

    #[test]
    fn second_occurrence_skips_the_lookalike_beginning() {
        // The send-MMS case: screen is `a`, progress `p` appears, then
        // back to `a`. Ending = second occurrence of `a`.
        let v = video_of("aappppaa");
        let m = Matcher::new();
        let hit = m.match_lag(&v, SimTime::ZERO, &annotation_of('a', 2)).unwrap();
        assert_eq!(hit.end_frame, 6);
        // With occurrence 1 the matcher would (wrongly) match at once.
        let wrong = m.match_lag(&v, SimTime::ZERO, &annotation_of('a', 1)).unwrap();
        assert_eq!(wrong.end_frame, 0);
    }

    #[test]
    fn walk_starts_at_the_input_frame() {
        // `b` appears before the input; matching from the input's frame
        // must find the *next* appearance.
        let v = video_of("bbaaabb");
        let m = Matcher::new();
        let start = SimTime::from_micros(2 * 33_333);
        let hit = m.match_lag(&v, start, &annotation_of('b', 1)).unwrap();
        assert_eq!(hit.end_frame, 5);
        assert_eq!(hit.lag, SimDuration::from_micros(3 * 33_333));
    }

    #[test]
    fn missing_ending_is_an_error() {
        let v = video_of("aaaa");
        let m = Matcher::new();
        assert_eq!(
            m.match_lag(&v, SimTime::ZERO, &annotation_of('z', 1)),
            Err(MatchFailure::EndingNotFound)
        );
    }

    #[test]
    fn occurrence_beyond_the_video_horizon_is_an_error() {
        // The ending image appears once, but the annotation asks for the
        // second occurrence and the video ends first.
        let v = video_of("aabba");
        let m = Matcher::new();
        assert_eq!(
            m.match_lag(&v, SimTime::ZERO, &annotation_of('b', 2)),
            Err(MatchFailure::EndingNotFound)
        );
        // Sanity: the first occurrence is reachable.
        assert!(m.match_lag(&v, SimTime::ZERO, &annotation_of('b', 1)).is_ok());
    }

    #[test]
    fn input_after_the_last_frame_exhausts_the_horizon() {
        let v = video_of("abab");
        let m = Matcher::new();
        // Walk starts past the end of the video: nothing left to match.
        let late = SimTime::from_secs(10);
        assert_eq!(
            m.match_lag(&v, late, &annotation_of('a', 1)),
            Err(MatchFailure::EndingNotFound)
        );
    }

    #[test]
    fn clean_matches_keep_full_confidence_under_any_policy() {
        let v = video_of("aaabbb");
        let m = Matcher::new();
        let hit = m
            .match_lag_with_policy(
                &v,
                SimTime::ZERO,
                &annotation_of('b', 1),
                &MatchPolicy::paper_recovery(),
            )
            .unwrap();
        assert_eq!(hit.end_frame, 3);
        assert_eq!(hit.confidence, 1.0);
    }

    #[test]
    fn escalation_recovers_a_corrupted_ending_with_reduced_confidence() {
        // The ending frame differs from the annotation by a few flipped
        // pixels — the capture-corruption fault model's signature.
        let mut v = video_of("aaa");
        let mut corrupted = FrameBuffer::new(8, 8);
        corrupted.fill(b'b');
        corrupted.set(1, 1, b'b' ^ 0x05);
        corrupted.set(5, 5, b'b' ^ 0x11);
        v.push(SimTime::from_micros(3 * 33_333), Arc::new(corrupted)).unwrap();

        let m = Matcher::new();
        let ann = annotation_of('b', 1);
        assert_eq!(m.match_lag(&v, SimTime::ZERO, &ann), Err(MatchFailure::EndingNotFound));
        let hit = m
            .match_lag_with_policy(&v, SimTime::ZERO, &ann, &MatchPolicy::paper_recovery())
            .unwrap();
        assert_eq!(hit.end_frame, 3);
        assert!(hit.confidence < 1.0, "escalated match must lose confidence");
        // Strict policy has no ladder to climb.
        assert_eq!(
            m.match_lag_with_policy(&v, SimTime::ZERO, &ann, &MatchPolicy::strict()),
            Err(MatchFailure::EndingNotFound)
        );
    }

    #[test]
    fn escalation_is_bounded_and_still_fails_honestly() {
        // No frame is anywhere near the ending image: every ladder step
        // must fail and the failure must survive.
        let v = video_of("aaaa");
        let m = Matcher::new();
        assert_eq!(
            m.match_lag_with_policy(
                &v,
                SimTime::ZERO,
                &annotation_of('z', 1),
                &MatchPolicy::paper_recovery()
            ),
            Err(MatchFailure::EndingNotFound)
        );
    }

    #[test]
    fn mark_up_with_policy_records_per_lag_confidence() {
        let mut v = video_of("aab");
        let mut corrupted = FrameBuffer::new(8, 8);
        corrupted.fill(b'c');
        corrupted.set(2, 2, b'c' ^ 0x03);
        v.push(SimTime::from_micros(3 * 33_333), Arc::new(corrupted)).unwrap();

        let mut db = AnnotationDb::new("t");
        let mut ann_b = annotation_of('b', 1);
        ann_b.interaction_id = 0;
        db.insert(ann_b);
        let mut ann_c = annotation_of('c', 1);
        ann_c.interaction_id = 1;
        db.insert(ann_c);

        let beginnings = vec![(0usize, SimTime::ZERO), (1usize, SimTime::ZERO)];
        let (profile, failures) =
            mark_up_with_policy(&v, &beginnings, &db, "test", &MatchPolicy::paper_recovery());
        assert!(failures.is_empty(), "failures: {failures:?}");
        let confidence_of = |id: usize| {
            profile.entries().iter().find(|e| e.interaction_id == id).unwrap().confidence
        };
        assert_eq!(confidence_of(0), 1.0, "clean match keeps full confidence");
        assert!(confidence_of(1) < 1.0, "recovered match is flagged");
    }

    #[test]
    fn mark_up_collects_profile_and_failures() {
        let v = video_of("aabbccc");
        let mut db = AnnotationDb::new("t");
        let mut ann_b = annotation_of('b', 1);
        ann_b.interaction_id = 0;
        db.insert(ann_b);
        let mut ann_z = annotation_of('z', 1);
        ann_z.interaction_id = 1;
        db.insert(ann_z);

        let beginnings = vec![
            (0usize, SimTime::ZERO),
            (1usize, SimTime::from_micros(33_333)),
            (2usize, SimTime::from_micros(66_666)), // not annotated
        ];
        let (profile, failures) = mark_up(&v, &beginnings, &db, "test");
        assert_eq!(profile.len(), 1);
        assert_eq!(failures.len(), 2);
        assert!(failures.contains(&(1, MatchFailure::EndingNotFound)));
        assert!(failures.contains(&(2, MatchFailure::NotAnnotated)));
    }

    #[test]
    fn fired_token_cancels_the_walk_and_the_remaining_lags() {
        let v = video_of("aaabbb");
        let token = CancelToken::manual();
        token.cancel();
        let m = Matcher::new();
        assert_eq!(
            m.match_lag_cancellable(
                &v,
                SimTime::ZERO,
                &annotation_of('b', 1),
                &MatchPolicy::paper_recovery(),
                &DISABLED,
                &token,
            ),
            Err(MatchFailure::Cancelled)
        );
        let mut db = AnnotationDb::new("t");
        db.insert(annotation_of('b', 1));
        let beginnings = vec![(0usize, SimTime::ZERO), (1usize, SimTime::ZERO)];
        let (profile, failures) = mark_up_cancellable(
            &v,
            &beginnings,
            &db,
            "t",
            &MatchPolicy::strict(),
            &DISABLED,
            &token,
        );
        assert!(profile.is_empty());
        assert_eq!(failures, vec![(0, MatchFailure::Cancelled), (1, MatchFailure::Cancelled)]);
        // An unfired token changes nothing.
        let live = CancelToken::manual();
        let hit = m
            .match_lag_cancellable(
                &v,
                SimTime::ZERO,
                &annotation_of('b', 1),
                &MatchPolicy::strict(),
                &DISABLED,
                &live,
            )
            .unwrap();
        assert_eq!(hit.end_frame, 3);
    }

    #[test]
    fn batched_mark_up_is_bit_identical_to_per_lag_matching() {
        // A corpus that exercises every verdict path: occurrence counting,
        // mid-stream starts, escalation recovery, honest failures and
        // missing annotations — all against content that repeats so the
        // batch engine's slot caches are actually shared across lags.
        let mut v = video_of("aabbaapppa");
        let mut corrupted = FrameBuffer::new(8, 8);
        corrupted.fill(b'q');
        corrupted.set(3, 3, b'q' ^ 0x0f);
        v.push(SimTime::from_micros(10 * 33_333), Arc::new(corrupted)).unwrap();

        let mut db = AnnotationDb::new("t");
        for (id, (c, occurrence)) in
            [(b'b', 1), (b'a', 2), (b'a', 3), (b'q', 1), (b'z', 1)].iter().enumerate()
        {
            let mut ann = annotation_of(*c as char, *occurrence);
            ann.interaction_id = id;
            db.insert(ann);
        }
        let beginnings: Vec<(usize, SimTime)> = vec![
            (0, SimTime::ZERO),
            (1, SimTime::ZERO),
            (2, SimTime::from_micros(33_333)),
            (3, SimTime::ZERO),                    // needs escalation
            (4, SimTime::ZERO),                    // never matches
            (5, SimTime::ZERO),                    // not annotated
            (0, SimTime::from_micros(5 * 33_333)), // repeated id, no 'b' left
        ];
        let policy = MatchPolicy::paper_recovery();
        let (profile, failures) = mark_up_with_policy(&v, &beginnings, &db, "t", &policy);

        // Reference: each lag matched on its own by the per-frame walker.
        let matcher = Matcher::new();
        let mut ref_profile = LagProfile::new("t");
        let mut ref_failures = Vec::new();
        for &(id, input_time) in &beginnings {
            match db.get(id) {
                None => ref_failures.push((id, MatchFailure::NotAnnotated)),
                Some(ann) => match matcher.match_lag_with_policy(&v, input_time, ann, &policy) {
                    Ok(m) => ref_profile.push(LagEntry {
                        interaction_id: id,
                        input_time,
                        lag: m.lag,
                        threshold: ann.threshold,
                        confidence: m.confidence,
                    }),
                    Err(f) => ref_failures.push((id, f)),
                },
            }
        }
        assert_eq!(profile.entries(), ref_profile.entries());
        assert_eq!(failures, ref_failures);
        assert_eq!(profile.len(), 4, "lags 0..=3 resolve; the repeat finds no 'b' left");
        assert_eq!(failures.len(), 3);
    }

    #[test]
    fn masked_matching_tolerates_clock_changes() {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        let mut f0 = FrameBuffer::new(8, 8);
        f0.fill(7);
        v.push(SimTime::ZERO, Arc::new(f0.clone())).unwrap();
        // Target screen, but with a different "clock" row than annotated.
        let mut f1 = FrameBuffer::new(8, 8);
        f1.fill(42);
        f1.fill_rect(interlag_video::frame::Rect::new(0, 0, 8, 1), 200);
        v.push(SimTime::from_micros(33_333), Arc::new(f1)).unwrap();

        let mask = Mask::status_bar(8, 1);
        let mut img = FrameBuffer::new(8, 8);
        img.fill(42);
        mask.apply(&mut img);
        let ann = LagAnnotation {
            interaction_id: 0,
            image: img,
            mask,
            tolerance: MatchTolerance::EXACT,
            occurrence: 1,
            threshold: SimDuration::from_secs(1),
        };
        let hit = Matcher::new().match_lag(&v, SimTime::ZERO, &ann).unwrap();
        assert_eq!(hit.end_frame, 1);
    }
}
