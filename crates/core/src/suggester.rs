//! The suggester: semi-automatic lag-ending discovery (§II-D, Figure 7).
//!
//! Instead of eyeballing every frame of a captured video, the annotator is
//! shown only frames with a *high potential* of being a lag ending. The
//! algorithm maps successive frames to a sequence of ones (frame differs
//! from its predecessor) and zeros (frame equals it), then suggests every
//! `1` that is followed by a run of `0`s — the first frame of a
//! still-standing period. Blinking cursors and small animations are
//! handled exactly as the paper describes: a per-lag pixel tolerance, an
//! image mask, and a configurable minimum still-period length.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use interlag_evdev::time::SimTime;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::VideoStream;

/// Tunables of the suggester, adjustable per lag as in the paper's GUI.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SuggesterConfig {
    /// Regions ignored when comparing successive frames (clock, ads).
    pub mask: Mask,
    /// Pixel-value / pixel-count tolerances ("allow a certain amount of
    /// pixel difference between frames").
    pub tolerance: MatchTolerance,
    /// How many consecutive unchanged frames must follow a changed frame
    /// before it is suggested ("the amount of zeros following a one can
    /// be specified"). Zero behaves like one.
    pub min_still_run: u32,
}

/// A suggested lag-ending frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Suggestion {
    /// Index of the suggested frame in the video.
    pub frame_index: u32,
    /// Presentation time of that frame.
    pub time: SimTime,
    /// Length of the still period following it, in frames (clipped at the
    /// window end).
    pub still_run: u32,
}

/// The suggester algorithm.
///
/// # Examples
///
/// ```
/// use interlag_core::suggester::{Suggester, SuggesterConfig};
/// use interlag_evdev::time::SimTime;
/// use interlag_video::frame::FrameBuffer;
/// use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
/// use std::sync::Arc;
///
/// // Three stills: A A B B B — one change, so one suggestion (frame 2).
/// let mut video = VideoStream::new(FRAME_PERIOD_30FPS);
/// let a = Arc::new(FrameBuffer::new(8, 8));
/// let mut bb = FrameBuffer::new(8, 8);
/// bb.fill(200);
/// let b = Arc::new(bb);
/// for (i, f) in [&a, &a, &b, &b, &b].iter().enumerate() {
///     video.push(SimTime::from_micros(i as u64 * 33_333), (*f).clone()).unwrap();
/// }
/// let s = Suggester::new(SuggesterConfig::default());
/// let suggestions = s.suggest(&video, SimTime::ZERO, SimTime::from_secs(1));
/// assert_eq!(suggestions.len(), 1);
/// assert_eq!(suggestions[0].frame_index, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Suggester {
    config: SuggesterConfig,
}

impl Suggester {
    /// Creates a suggester.
    pub fn new(config: SuggesterConfig) -> Self {
        Suggester { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SuggesterConfig {
        &self.config
    }

    /// The paper's inner representation: for every frame in
    /// `[from_index, to_index)`, `true` if it differs from its predecessor
    /// under the mask/tolerance. The first frame of the video is `false`
    /// by definition.
    pub fn change_sequence(
        &self,
        video: &VideoStream,
        from_index: u32,
        to_index: u32,
    ) -> Vec<bool> {
        let frames = video.frames();
        let to = (to_index as usize).min(frames.len());
        let from = (from_index as usize).min(to);
        let mut out = Vec::with_capacity(to - from);
        if from >= to {
            return out;
        }
        // One mask compilation serves the whole window (frames of one
        // capture share dimensions, as the naive comparison also assumes).
        let compiled =
            self.config.mask.compile(frames[from].buf.width(), frames[from].buf.height());
        for i in from..to {
            if i == 0 {
                out.push(false);
                continue;
            }
            let (prev, cur) = (&frames[i - 1].buf, &frames[i].buf);
            // Still periods reuse one allocation: pointer-identical frames
            // are equal under every tolerance, no pixels needed.
            let changed = !Arc::ptr_eq(prev, cur)
                && !self.config.tolerance.matches_compiled(&compiled, prev, cur);
            out.push(changed);
        }
        out
    }

    /// Suggests potential lag-ending frames for the window from
    /// `lag_start` (the input) to `window_end` (the next input, or the end
    /// of the capture): every changed frame followed by at least
    /// `min_still_run` unchanged frames. A changed frame whose still
    /// period is clipped by the window end is also suggested — the ending
    /// may be the last thing that happened.
    pub fn suggest(
        &self,
        video: &VideoStream,
        lag_start: SimTime,
        window_end: SimTime,
    ) -> Vec<Suggestion> {
        let first = video.first_frame_at_or_after(lag_start);
        let last = video.first_frame_at_or_after(window_end);
        let changes = self.change_sequence(video, first, last);
        let min_run = self.config.min_still_run.max(1);

        let mut out = Vec::new();
        let mut i = 0usize;
        while i < changes.len() {
            if changes[i] {
                // Measure the still run following this change.
                let mut run = 0u32;
                let mut j = i + 1;
                while j < changes.len() && !changes[j] {
                    run += 1;
                    j += 1;
                }
                let clipped = j == changes.len();
                if run >= min_run || (clipped && run > 0) || (clipped && i + 1 == changes.len()) {
                    let idx = first + i as u32;
                    let time = video.frames()[idx as usize].time;
                    out.push(Suggestion { frame_index: idx, time, still_run: run });
                }
                i = j;
            } else {
                i += 1;
            }
        }
        out
    }

    /// The manual-markup burden this window would have cost: how many
    /// frames a human would step through without the suggester.
    pub fn frames_in_window(
        &self,
        video: &VideoStream,
        lag_start: SimTime,
        window_end: SimTime,
    ) -> u32 {
        let first = video.first_frame_at_or_after(lag_start);
        let last = video.first_frame_at_or_after(window_end);
        last - first
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_video::frame::{FrameBuffer, Rect};
    use interlag_video::stream::FRAME_PERIOD_30FPS;
    use std::sync::Arc;

    fn frame(v: u8) -> Arc<FrameBuffer> {
        let mut f = FrameBuffer::new(16, 16);
        f.fill(v);
        Arc::new(f)
    }

    /// Builds a video from a pattern string: each char is a frame; equal
    /// chars are identical frames.
    fn video_of(pattern: &str) -> VideoStream {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        for (i, c) in pattern.chars().enumerate() {
            v.push(SimTime::from_micros(i as u64 * 33_333), frame(c as u8)).unwrap();
        }
        v
    }

    fn suggest_all(pattern: &str, min_still: u32) -> Vec<u32> {
        let s = Suggester::new(SuggesterConfig { min_still_run: min_still, ..Default::default() });
        let v = video_of(pattern);
        s.suggest(&v, SimTime::ZERO, SimTime::from_secs(10))
            .into_iter()
            .map(|x| x.frame_index)
            .collect()
    }

    #[test]
    fn figure7_style_progressive_load() {
        // aaa b cc d eeee: changes at 3 (b), 4 (c), 6 (d), 7 (e).
        // b has no still run (c follows immediately? b at index 3, index 4
        // differs) → not suggested. c (index 4, still at 5) suggested; d
        // (index 6) changes then e at 7 → not; e (7) still 8..10 →
        // suggested.
        assert_eq!(suggest_all("aaabccdeeee", 1), vec![4, 7]);
    }

    #[test]
    fn every_change_before_still_is_suggested() {
        // Progressive loading: each element paints then holds.
        assert_eq!(suggest_all("aabbccdd", 1), vec![2, 4, 6]);
    }

    #[test]
    fn min_still_run_filters_short_pauses() {
        // With min_still_run = 3 only runs of ≥ 3 zeros count, plus the
        // clipped final run.
        let idx = suggest_all("abbccccdd", 3);
        // b at 1 has run 1 → no; c at 3 has run 3 → yes; d at 7 run 1 but
        // clipped at window end → yes.
        assert_eq!(idx, vec![3, 7]);
    }

    #[test]
    fn unchanged_video_suggests_nothing() {
        assert!(suggest_all("aaaaaaa", 1).is_empty());
    }

    #[test]
    fn window_bounds_are_respected() {
        let s = Suggester::default();
        let v = video_of("aaabbb");
        // Window ends before the change at frame 3.
        let sug = s.suggest(&v, SimTime::ZERO, SimTime::from_micros(2 * 33_333));
        assert!(sug.is_empty());
        // Window starting after the change sees nothing either.
        let sug = s.suggest(&v, SimTime::from_micros(4 * 33_333), SimTime::from_secs(1));
        assert!(sug.is_empty());
    }

    #[test]
    fn mask_suppresses_suggestions_from_masked_regions() {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        let base = frame(10);
        v.push(SimTime::ZERO, base.clone()).unwrap();
        // A change only inside the top bar.
        let mut f = (*base).clone();
        f.fill_rect(Rect::new(0, 0, 16, 2), 99);
        v.push(SimTime::from_micros(33_333), Arc::new(f)).unwrap();
        v.push(SimTime::from_micros(66_666), v.frames()[1].buf.clone()).unwrap();

        let unmasked = Suggester::default();
        assert_eq!(unmasked.suggest(&v, SimTime::ZERO, SimTime::from_secs(1)).len(), 1);

        let masked =
            Suggester::new(SuggesterConfig { mask: Mask::status_bar(16, 2), ..Default::default() });
        assert!(masked.suggest(&v, SimTime::ZERO, SimTime::from_secs(1)).is_empty());
    }

    #[test]
    fn still_run_lengths_are_reported() {
        let s = Suggester::default();
        let v = video_of("abbbb");
        let sug = s.suggest(&v, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(sug.len(), 1);
        assert_eq!(sug[0].still_run, 3);
        assert_eq!(s.frames_in_window(&v, SimTime::ZERO, SimTime::from_secs(1)), 5);
    }
}
