//! Jank analysis — the paper's §VI future work, implemented.
//!
//! *"We also plan to include workloads that are dominated by Jank type
//! lags where frames are dropped when the processor is too busy to keep
//! up with the load."* Interaction lags measure discrete waits; jank is
//! the complementary QoE failure: a continuous animation (game, video,
//! scrolling) that stutters because the UI thread misses frame deadlines.
//!
//! Like lag measurement, jank is measured from the captured video alone,
//! non-intrusively: within an animation window the analyser compares the
//! animation region across successive frames and counts how many distinct
//! animation frames were actually presented versus how many the animation
//! should have produced at its nominal rate.

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_video::frame::Rect;
use interlag_video::stream::VideoStream;

/// The jank measurement of one animation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JankReport {
    /// Animation frames the window should have shown at the nominal rate.
    pub expected_frames: u64,
    /// Distinct animation frames actually presented.
    pub observed_frames: u64,
    /// The longest stretch without an animation update.
    pub longest_stall: SimDuration,
    /// The window that was analysed.
    pub window: SimDuration,
}

impl JankReport {
    /// Fraction of animation frames dropped (0 = perfectly smooth).
    pub fn jank_ratio(&self) -> f64 {
        if self.expected_frames == 0 {
            return 0.0;
        }
        let dropped = self.expected_frames.saturating_sub(self.observed_frames);
        dropped as f64 / self.expected_frames as f64
    }

    /// The presented animation rate in frames per second.
    pub fn observed_fps(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.observed_frames as f64 / self.window.as_secs_f64()
    }
}

/// Measures jank within `[window_start, window_end)`: counts distinct
/// contents of `animation_region` across the captured frames and compares
/// against the animation's `nominal_period` (100 ms for the simulated
/// spinner).
///
/// An animation update is counted whenever the region's pixels differ
/// from the previous captured frame; `longest_stall` is the maximum
/// distance between consecutive updates (or window edges).
///
/// # Examples
///
/// ```
/// use interlag_core::jank::measure_jank;
/// use interlag_evdev::time::{SimDuration, SimTime};
/// use interlag_video::frame::{FrameBuffer, Rect};
/// use interlag_video::stream::{VideoStream, FRAME_PERIOD_30FPS};
/// use std::sync::Arc;
///
/// // A 10-frame video whose animation region never changes: 100 % jank.
/// let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
/// let f = Arc::new(FrameBuffer::new(16, 16));
/// for i in 0..10u64 {
///     v.push(SimTime::from_micros(i * 33_333), f.clone()).unwrap();
/// }
/// let r = measure_jank(
///     &v,
///     SimTime::ZERO,
///     SimTime::from_millis(300),
///     Rect::new(4, 4, 8, 8),
///     SimDuration::from_millis(100),
/// );
/// assert_eq!(r.observed_frames, 0);
/// assert_eq!(r.jank_ratio(), 1.0);
/// ```
pub fn measure_jank(
    video: &VideoStream,
    window_start: SimTime,
    window_end: SimTime,
    animation_region: Rect,
    nominal_period: SimDuration,
) -> JankReport {
    let window = window_end.saturating_since(window_start);
    let expected_frames =
        if nominal_period.is_zero() { 0 } else { window.as_micros() / nominal_period.as_micros() };

    let first = video.first_frame_at_or_after(window_start) as usize;
    let last = video.first_frame_at_or_after(window_end) as usize;

    let mut observed = 0u64;
    let mut longest_stall = SimDuration::ZERO;
    let mut last_update = window_start;
    let mut prev_crop: Option<interlag_video::frame::FrameBuffer> = None;
    for frame in &video.frames()[first..last] {
        let crop = frame.buf.crop(animation_region);
        if let Some(prev) = &prev_crop {
            if crop != *prev {
                observed += 1;
                longest_stall = longest_stall.max(frame.time.saturating_since(last_update));
                last_update = frame.time;
            }
        }
        prev_crop = Some(crop);
    }
    longest_stall = longest_stall.max(window_end.saturating_since(last_update));

    JankReport { expected_frames, observed_frames: observed, longest_stall, window }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_video::frame::FrameBuffer;
    use interlag_video::stream::FRAME_PERIOD_30FPS;
    use std::sync::Arc;

    const REGION: Rect = Rect { x0: 4, y0: 4, x1: 12, y1: 12 };

    /// Builds a 30 fps video where the animation region updates every
    /// `update_every`-th frame.
    fn video_with_updates(frames: u64, update_every: u64) -> VideoStream {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        let mut counter = 0u64;
        for i in 0..frames {
            if update_every > 0 && i % update_every == 0 {
                counter += 1;
            }
            let mut f = FrameBuffer::new(16, 16);
            f.fill(40);
            f.hash_paint(REGION, counter);
            v.push(SimTime::from_micros(i * 33_333), Arc::new(f)).unwrap();
        }
        v
    }

    fn window_end(frames: u64) -> SimTime {
        SimTime::from_micros(frames * 33_333)
    }

    #[test]
    fn smooth_animation_has_no_jank() {
        // Updates every 3rd captured frame = every 100 ms = nominal rate.
        let v = video_with_updates(90, 3);
        let r =
            measure_jank(&v, SimTime::ZERO, window_end(90), REGION, SimDuration::from_millis(100));
        assert_eq!(r.expected_frames, 29);
        assert!(r.observed_frames >= 28, "observed {}", r.observed_frames);
        assert!(r.jank_ratio() < 0.05);
        assert!(r.longest_stall <= SimDuration::from_millis(140));
    }

    #[test]
    fn half_rate_animation_is_half_janky() {
        // Updates every 6th frame = every 200 ms instead of 100 ms.
        let v = video_with_updates(90, 6);
        let r =
            measure_jank(&v, SimTime::ZERO, window_end(90), REGION, SimDuration::from_millis(100));
        let ratio = r.jank_ratio();
        assert!((0.4..0.6).contains(&ratio), "ratio {ratio}");
        assert!((4.0..6.0).contains(&r.observed_fps()), "fps {}", r.observed_fps());
    }

    #[test]
    fn frozen_animation_reports_full_stall() {
        let v = video_with_updates(60, 0);
        let r =
            measure_jank(&v, SimTime::ZERO, window_end(60), REGION, SimDuration::from_millis(100));
        assert_eq!(r.observed_frames, 0);
        assert_eq!(r.jank_ratio(), 1.0);
        assert_eq!(r.longest_stall, window_end(60).saturating_since(SimTime::ZERO));
    }

    #[test]
    fn changes_outside_the_region_do_not_count() {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        for i in 0..30u64 {
            let mut f = FrameBuffer::new(16, 16);
            // The clock area changes; the animation region stays still.
            f.hash_paint(Rect::new(0, 0, 16, 2), i);
            v.push(SimTime::from_micros(i * 33_333), Arc::new(f)).unwrap();
        }
        let r =
            measure_jank(&v, SimTime::ZERO, window_end(30), REGION, SimDuration::from_millis(100));
        assert_eq!(r.observed_frames, 0);
    }

    #[test]
    fn empty_window_is_not_janky() {
        let v = video_with_updates(10, 1);
        let r = measure_jank(
            &v,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            REGION,
            SimDuration::from_millis(100),
        );
        assert_eq!(r.expected_frames, 0);
        assert_eq!(r.jank_ratio(), 0.0);
    }
}
