//! Minimal binary wire helpers for the compact checkpoint codec.
//!
//! Little-endian, length-prefixed, bounds-checked: the writer ([`W`]) is
//! infallible, the reader ([`R`]) returns `None` the moment a read would
//! run off the end, so a truncated or garbled payload can never panic the
//! decoder — it just fails to decode, exactly like malformed JSON does on
//! the text path. Integer widths are fixed (`usize` travels as `u64`) so
//! encodings are identical across platforms, and `f64`s travel as their
//! IEEE bit patterns.

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct W {
    buf: Vec<u8>,
}

impl W {
    /// Starts an empty payload.
    pub fn new() -> Self {
        W { buf: Vec::new() }
    }

    /// The finished payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, no length prefix (magic numbers, fixed-size blobs).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte (enum tags).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` as a `u64` so the width never depends on the platform.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as its exact IEEE-754 bit pattern (NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// UTF-8 string, `u32` byte length followed by the bytes.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Bounds-checked binary reader over one payload.
#[derive(Debug)]
pub struct R<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> R<'a> {
    /// Starts reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        R { buf, pos: 0 }
    }

    /// The next `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Option<&'a [u8]> {
        let bytes = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(bytes)
    }

    /// One byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.raw(1)?[0])
    }

    /// `u32`, little-endian.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.raw(4)?.try_into().ok()?))
    }

    /// `u64`, little-endian.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.raw(8)?.try_into().ok()?))
    }

    /// `usize` from its `u64` encoding; `None` if it does not fit.
    pub fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.raw(len)?.to_vec()).ok()
    }

    /// `true` once every byte has been consumed — decoders require this
    /// so trailing garbage fails the decode instead of being ignored.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = W::new();
        w.raw(b"MAGC");
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.usize(123_456);
        w.f64(f64::from_bits(0x7ff8_dead_beef_0001)); // NaN with payload
        w.str("naïve ✓");
        let bytes = w.into_bytes();

        let mut r = R::new(&bytes);
        assert_eq!(r.raw(4), Some(&b"MAGC"[..]));
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.usize(), Some(123_456));
        assert_eq!(r.f64().map(f64::to_bits), Some(0x7ff8_dead_beef_0001));
        assert_eq!(r.str().as_deref(), Some("naïve ✓"));
        assert!(r.at_end());
    }

    #[test]
    fn truncation_reads_none_never_panics() {
        let mut w = W::new();
        w.u64(42);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = R::new(&bytes[..cut]);
            // Whichever read hits the cut must return None.
            let full = r.u64().is_some() && r.str().is_some();
            assert!(!full, "cut at {cut} still decoded fully");
        }
    }

    #[test]
    fn bad_utf8_and_oversized_lengths_fail_cleanly() {
        let mut w = W::new();
        w.u32(3);
        w.raw(&[0xff, 0xfe, 0xfd]);
        let bytes = w.into_bytes();
        assert_eq!(R::new(&bytes).str(), None, "invalid UTF-8");

        let mut w = W::new();
        w.u32(u32::MAX); // length far past the buffer
        w.raw(b"xy");
        assert_eq!(R::new(&w.into_bytes()).str(), None);
    }
}
