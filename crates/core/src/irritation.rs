//! The user-irritation metric (§II-F, Figure 9).
//!
//! Each interaction lag has an *irritation threshold*: the longest wait
//! the user accepts without noticing. Lags below their threshold do not
//! irritate; lags above contribute a penalty equal to the excess. The
//! metric is the sum of penalties — "the total amount of time a user is
//! irritated by too long lag times" over a workload.
//!
//! Three threshold models are provided, matching the paper's options: the
//! annotated per-lag thresholds (Shneiderman HCI categories chosen at
//! annotation time), a single fixed threshold, and the study's
//! "110 % of what the fastest frequency could achieve" rule (§III-B),
//! under which the fastest configuration and the oracle are by definition
//! not irritating.

use serde::{Deserialize, Serialize};

use interlag_evdev::time::SimDuration;

use crate::profile::LagProfile;

/// How per-lag irritation thresholds are chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum ThresholdModel {
    /// Use the threshold annotated with each lag (the HCI categories).
    Annotated,
    /// One threshold for every lag.
    Fixed(SimDuration),
    /// `factor ×` the lag the reference (fastest-frequency) profile
    /// measured for the same interaction; lags missing from the reference
    /// fall back to the annotated threshold. The paper uses factor 1.1.
    RelativeToReference {
        /// The fastest-frequency lag profile.
        reference: LagProfile,
        /// The slack factor (1.1 in the paper).
        factor: f64,
    },
}

impl ThresholdModel {
    /// The study's standard model: 110 % of the reference profile.
    pub fn paper_rule(reference: LagProfile) -> Self {
        ThresholdModel::RelativeToReference { reference, factor: 1.1 }
    }

    /// The threshold for one lag entry.
    pub fn threshold_for(&self, entry: &crate::profile::LagEntry) -> SimDuration {
        match self {
            ThresholdModel::Annotated => entry.threshold,
            ThresholdModel::Fixed(t) => *t,
            ThresholdModel::RelativeToReference { reference, factor } => reference
                .lag_of(entry.interaction_id)
                .map(|l| l.mul_f64(*factor))
                .unwrap_or(entry.threshold),
        }
    }
}

/// One lag's contribution to the metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LagPenalty {
    /// The interaction.
    pub interaction_id: usize,
    /// The measured lag.
    pub lag: SimDuration,
    /// The threshold applied.
    pub threshold: SimDuration,
    /// `max(0, lag − threshold)`.
    pub penalty: SimDuration,
}

/// The user-irritation report of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrritationReport {
    /// Which configuration was measured.
    pub config: String,
    /// Per-lag penalties, in interaction order.
    pub penalties: Vec<LagPenalty>,
}

impl IrritationReport {
    /// Total irritation: the paper's headline per-configuration number.
    pub fn total(&self) -> SimDuration {
        self.penalties.iter().map(|p| p.penalty).sum()
    }

    /// How many lags irritated at all.
    pub fn irritating_lags(&self) -> usize {
        self.penalties.iter().filter(|p| !p.penalty.is_zero()).count()
    }
}

/// Computes the irritation metric for one lag profile.
///
/// # Examples
///
/// ```
/// use interlag_core::irritation::{user_irritation, ThresholdModel};
/// use interlag_core::profile::{LagEntry, LagProfile};
/// use interlag_evdev::time::{SimDuration, SimTime};
///
/// let mut p = LagProfile::new("conservative");
/// p.push(LagEntry {
///     interaction_id: 0,
///     input_time: SimTime::ZERO,
///     lag: SimDuration::from_millis(1_400),
///     threshold: SimDuration::from_secs(1),
///     confidence: 1.0,
/// });
/// let report = user_irritation(&p, &ThresholdModel::Annotated);
/// assert_eq!(report.total(), SimDuration::from_millis(400));
/// ```
pub fn user_irritation(profile: &LagProfile, model: &ThresholdModel) -> IrritationReport {
    let penalties = profile
        .entries()
        .iter()
        .map(|e| {
            let threshold = model.threshold_for(e);
            LagPenalty {
                interaction_id: e.interaction_id,
                lag: e.lag,
                threshold,
                penalty: e.lag.saturating_sub(threshold),
            }
        })
        .collect();
    IrritationReport { config: profile.config.clone(), penalties }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LagEntry;
    use interlag_evdev::time::SimTime;

    fn profile(lags_ms: &[u64]) -> LagProfile {
        let mut p = LagProfile::new("test");
        for (i, &ms) in lags_ms.iter().enumerate() {
            p.push(LagEntry {
                interaction_id: i,
                input_time: SimTime::from_secs(i as u64),
                lag: SimDuration::from_millis(ms),
                threshold: SimDuration::from_millis(1_000),
                confidence: 1.0,
            });
        }
        p
    }

    #[test]
    fn annotated_thresholds() {
        let p = profile(&[500, 1_000, 1_600]);
        let r = user_irritation(&p, &ThresholdModel::Annotated);
        assert_eq!(r.total(), SimDuration::from_millis(600));
        assert_eq!(r.irritating_lags(), 1);
    }

    #[test]
    fn fixed_threshold() {
        let p = profile(&[500, 1_000, 1_600]);
        let r = user_irritation(&p, &ThresholdModel::Fixed(SimDuration::from_millis(400)));
        assert_eq!(r.total(), SimDuration::from_millis(100 + 600 + 1_200));
        assert_eq!(r.irritating_lags(), 3);
    }

    #[test]
    fn paper_rule_gives_reference_zero_irritation() {
        let fastest = profile(&[100, 200, 300]);
        let model = ThresholdModel::paper_rule(fastest.clone());
        // The reference itself is never irritating under its own rule.
        let r = user_irritation(&fastest, &model);
        assert_eq!(r.total(), SimDuration::ZERO);
        // A profile 5 % slower is inside the 10 % slack.
        let near = profile(&[105, 210, 315]);
        assert_eq!(user_irritation(&near, &model).total(), SimDuration::ZERO);
        // A profile 50 % slower pays the excess over 110 %.
        let slow = profile(&[150, 300, 450]);
        let r = user_irritation(&slow, &model);
        assert_eq!(r.total(), SimDuration::from_millis((150 - 110) + (300 - 220) + (450 - 330)));
    }

    #[test]
    fn missing_reference_lag_falls_back_to_annotated() {
        let mut reference = profile(&[100]);
        reference.push(LagEntry {
            interaction_id: 42, // unrelated id
            input_time: SimTime::ZERO,
            lag: SimDuration::from_millis(1),
            threshold: SimDuration::from_millis(1),
            confidence: 1.0,
        });
        let model = ThresholdModel::RelativeToReference { reference, factor: 1.1 };
        let p = profile(&[500, 1_500]); // id 1 missing from reference
        let r = user_irritation(&p, &model);
        // id 0: threshold 110 ms → 390 ms penalty; id 1: falls back to the
        // annotated 1 s → 500 ms penalty.
        assert_eq!(r.total(), SimDuration::from_millis(390 + 500));
    }
}
