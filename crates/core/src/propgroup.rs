//! The property-group CLI grammar shared by `interlag sweep` and
//! `interlag db query`.
//!
//! A *property group* is resctl-bench's compact matrix notation: `:`
//! separates `key=value` pairs, `,` separates alternative values for one
//! key, and a `k-min`/`k-max`/`k-intvs` trio declares an inclusive
//! integer interval that expands to `k-intvs` evenly spaced values —
//! `jitter-us-min=20:jitter-us-max=100:jitter-us-intvs=5` is exactly
//! `jitter-us=20,40,60,80,100`. [`PropGroup::expand`] turns a group into
//! the cartesian product of every key's values, in declaration order
//! with later keys varying fastest, so a declared probe matrix maps
//! one-to-one onto sweep points and database keys.
//!
//! Parsing is strict and diagnostic: every rejection is a typed
//! [`PropError`] carrying the byte offset of the offending token, and
//! printing is canonical — for any accepted input,
//! `parse(s).to_string() == s`, which is what makes groups usable as
//! database keys.

use std::fmt;
use std::str::FromStr;

/// Characters a key or value may not contain: they are the grammar's
/// separators.
const SEPARATORS: [char; 3] = [':', ',', '='];

/// One parsed property group: ordered `key -> values` pairs.
///
/// Order is meaningful (it drives expansion order and canonical
/// printing); keys are unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropGroup {
    pairs: Vec<(String, Vec<String>)>,
}

/// One point of an expanded matrix: every key bound to exactly one
/// value, in the group's declaration order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PropPoint {
    pairs: Vec<(String, String)>,
}

/// A rejected property group: what was wrong and the byte offset of the
/// offending token in the canonical text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropError {
    /// Byte offset into the group text where the problem starts.
    pub offset: usize,
    /// What was wrong.
    pub kind: PropErrorKind,
}

/// Everything [`PropGroup`] parsing and expansion can reject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropErrorKind {
    /// The group text was empty.
    EmptyGroup,
    /// A `key=value` pair had an empty key.
    EmptyKey,
    /// A key contained a separator or other forbidden character.
    BadKey,
    /// A pair had no `=` at all.
    MissingEquals,
    /// A value in a `,`-separated list was empty.
    EmptyValue,
    /// The same key appeared twice (directly, or via an interval trio
    /// colliding with a plain key).
    DuplicateKey,
    /// An interval component (`-min`/`-max`/`-intvs`) was present
    /// without the other two.
    PartialInterval,
    /// An interval component needs a single unsigned integer value.
    BadIntervalNumber,
    /// An interval with `min > max`.
    EmptyInterval,
    /// `-intvs` was zero, or 1 with `min != max`.
    BadIntervalCount,
    /// A value parsed but lies outside the key's accepted domain
    /// (raised by layers validating beyond the grammar, e.g. the
    /// `db query` percentile stats or `interlag tune` tunable ranges).
    OutOfDomain,
    /// The key is well-formed but not part of the vocabulary the
    /// consuming layer accepts (e.g. a tunable the selected governor
    /// does not expose).
    UnknownKey,
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            PropErrorKind::EmptyGroup => "empty property group",
            PropErrorKind::EmptyKey => "empty key",
            PropErrorKind::BadKey => "key contains a separator character",
            PropErrorKind::MissingEquals => "expected key=value",
            PropErrorKind::EmptyValue => "empty value",
            PropErrorKind::DuplicateKey => "duplicate key",
            PropErrorKind::PartialInterval => "interval needs all of -min, -max and -intvs",
            PropErrorKind::BadIntervalNumber => "interval bounds must be single unsigned integers",
            PropErrorKind::EmptyInterval => "interval has min > max",
            PropErrorKind::BadIntervalCount => "interval count must fit the range",
            PropErrorKind::OutOfDomain => "value outside the key's accepted domain",
            PropErrorKind::UnknownKey => "key not accepted by this grammar",
        };
        write!(f, "{what} at byte {}", self.offset)
    }
}

impl std::error::Error for PropError {}

impl FromStr for PropGroup {
    type Err = PropError;

    fn from_str(s: &str) -> Result<Self, PropError> {
        if s.is_empty() {
            return Err(PropError { offset: 0, kind: PropErrorKind::EmptyGroup });
        }
        let mut pairs: Vec<(String, Vec<String>)> = Vec::new();
        let mut offset = 0usize;
        for part in s.split(':') {
            let pair_offset = offset;
            offset += part.len() + 1; // skip the ':' for the next pair
            let Some((key, values)) = part.split_once('=') else {
                return Err(PropError { offset: pair_offset, kind: PropErrorKind::MissingEquals });
            };
            if key.is_empty() {
                return Err(PropError { offset: pair_offset, kind: PropErrorKind::EmptyKey });
            }
            if key.contains(SEPARATORS) || key.contains(char::is_whitespace) {
                return Err(PropError { offset: pair_offset, kind: PropErrorKind::BadKey });
            }
            if pairs.iter().any(|(k, _)| k == key) {
                return Err(PropError { offset: pair_offset, kind: PropErrorKind::DuplicateKey });
            }
            let mut parsed = Vec::new();
            let mut value_offset = pair_offset + key.len() + 1;
            for value in values.split(',') {
                if value.is_empty() {
                    return Err(PropError {
                        offset: value_offset,
                        kind: PropErrorKind::EmptyValue,
                    });
                }
                value_offset += value.len() + 1;
                parsed.push(value.to_string());
            }
            pairs.push((key.to_string(), parsed));
        }
        Ok(PropGroup { pairs })
    }
}

impl fmt::Display for PropGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (key, values)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(":")?;
            }
            write!(f, "{key}={}", values.join(","))?;
        }
        Ok(())
    }
}

impl PropGroup {
    /// Builds a group programmatically. Keys must be unique, separator
    /// free and non-empty, values non-empty — the same rules parsing
    /// enforces (offsets refer to the canonical printing).
    pub fn new<K: Into<String>, V: Into<String>>(
        pairs: impl IntoIterator<Item = (K, Vec<V>)>,
    ) -> Result<Self, PropError> {
        let rendered = PropGroup {
            pairs: pairs
                .into_iter()
                .map(|(k, vs)| (k.into(), vs.into_iter().map(Into::into).collect()))
                .collect(),
        };
        // Re-parse the canonical text: one validation path, not two.
        rendered.to_string().parse()
    }

    /// The values bound to `key`, if present.
    pub fn get(&self, key: &str) -> Option<&[String]> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_slice())
    }

    /// The single value of `key`; `None` if absent or multi-valued.
    pub fn single(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some([v]) => Some(v),
            _ => None,
        }
    }

    /// The ordered pairs.
    pub fn pairs(&self) -> &[(String, Vec<String>)] {
        &self.pairs
    }

    /// The byte offset of `key` in the canonical printing — expansion
    /// errors point here.
    fn offset_of(&self, key: &str) -> usize {
        let mut offset = 0;
        for (k, values) in &self.pairs {
            if k == key {
                return offset;
            }
            offset += k.len() + 1 + values.iter().map(|v| v.len() + 1).sum::<usize>();
        }
        0
    }

    /// The byte offset of `value` under `key` in the canonical printing.
    /// Layers that validate values beyond the grammar (the `db query`
    /// percentile stats, tunable domains) point their [`PropError`]s
    /// here so diagnostics stay byte-addressed like the parser's own.
    pub fn offset_of_value(&self, key: &str, value: &str) -> usize {
        let mut offset = 0;
        for (k, values) in &self.pairs {
            if k == key {
                let mut value_offset = offset + k.len() + 1;
                for v in values {
                    if v == value {
                        return value_offset;
                    }
                    value_offset += v.len() + 1;
                }
                return offset;
            }
            offset += k.len() + 1 + values.iter().map(|v| v.len() + 1).sum::<usize>();
        }
        0
    }

    /// Resolves interval trios and returns the ordered `key -> values`
    /// list with every `k-min`/`k-max`/`k-intvs` trio replaced by the
    /// expanded `k` at the trio's first position.
    fn resolved(&self) -> Result<Vec<(String, Vec<String>)>, PropError> {
        let mut out: Vec<(String, Vec<String>)> = Vec::new();
        let mut consumed: Vec<&str> = Vec::new();
        for (key, values) in &self.pairs {
            let error = |kind| PropError { offset: self.offset_of(key), kind };
            let Some(base) = key
                .strip_suffix("-min")
                .or_else(|| key.strip_suffix("-max"))
                .or_else(|| key.strip_suffix("-intvs"))
            else {
                if self.pairs.iter().any(|(k, _)| k.strip_suffix("-min") == Some(key)) {
                    // `k` both plain and as an interval trio.
                    return Err(error(PropErrorKind::DuplicateKey));
                }
                out.push((key.clone(), values.clone()));
                continue;
            };
            if consumed.contains(&base) {
                continue; // the trio was expanded at its first component
            }
            consumed.push(base);
            let component = |suffix: &str| -> Result<u64, PropError> {
                let name = format!("{base}{suffix}");
                let value = self
                    .single(&name)
                    .ok_or_else(|| error(PropErrorKind::PartialInterval))?
                    .to_string();
                value.parse().map_err(|_| PropError {
                    offset: self.offset_of(&name),
                    kind: PropErrorKind::BadIntervalNumber,
                })
            };
            let (min, max, intvs) = (component("-min")?, component("-max")?, component("-intvs")?);
            if min > max {
                return Err(error(PropErrorKind::EmptyInterval));
            }
            if intvs == 0 || (intvs == 1 && min != max) || (intvs > 1 && max == min) {
                return Err(error(PropErrorKind::BadIntervalCount));
            }
            let expanded: Vec<String> = if intvs == 1 {
                vec![min.to_string()]
            } else {
                // Evenly spaced, endpoints exact, integer rounding.
                (0..intvs)
                    .map(|i| {
                        let num = (max - min) * i + (intvs - 1) / 2;
                        (min + num / (intvs - 1)).to_string()
                    })
                    .collect()
            };
            if self.pairs.iter().any(|(k, _)| k == base) {
                return Err(error(PropErrorKind::DuplicateKey));
            }
            out.push((base.to_string(), expanded));
        }
        Ok(out)
    }

    /// Expands the group to its full matrix: interval trios resolved,
    /// then the cartesian product of every key's values — declaration
    /// order, later keys varying fastest. The total is always the
    /// product of the per-key value counts.
    ///
    /// # Errors
    ///
    /// Any malformed interval trio, with the byte offset of the
    /// offending key in the canonical text.
    pub fn expand(&self) -> Result<Vec<PropPoint>, PropError> {
        let resolved = self.resolved()?;
        let mut points = vec![PropPoint { pairs: Vec::new() }];
        for (key, values) in &resolved {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for point in &points {
                for value in values {
                    let mut grown = point.clone();
                    grown.pairs.push((key.clone(), value.clone()));
                    next.push(grown);
                }
            }
            points = next;
        }
        Ok(points)
    }
}

impl fmt::Display for PropPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (key, value)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(":")?;
            }
            write!(f, "{key}={value}")?;
        }
        Ok(())
    }
}

impl PropPoint {
    /// A point built directly from `key -> value` bindings.
    pub fn new<K: Into<String>, V: Into<String>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        PropPoint { pairs: pairs.into_iter().map(|(k, v)| (k.into(), v.into())).collect() }
    }

    /// The value bound to `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The value of `key` parsed as an integer.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    /// The ordered bindings.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// The point without the keys in `drop`, order preserved — database
    /// group keys exclude fleet-shape knobs like `reps` this way.
    pub fn without(&self, drop: &[&str]) -> PropPoint {
        PropPoint {
            pairs: self
                .pairs
                .iter()
                .filter(|(k, _)| !drop.contains(&k.as_str()))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> PropGroup {
        s.parse().expect("valid group")
    }

    fn err(s: &str) -> PropError {
        s.parse::<PropGroup>().expect_err("invalid group")
    }

    #[test]
    fn parses_the_issue_examples() {
        let g = parse("governor=ondemand:device=sim14:stat=p95-lag");
        assert_eq!(g.single("governor"), Some("ondemand"));
        assert_eq!(g.single("device"), Some("sim14"));
        assert_eq!(g.single("stat"), Some("p95-lag"));
        let g = parse("key=val:key2=val,val2:reps=5");
        assert_eq!(g.get("key2").unwrap(), ["val", "val2"]);
        assert_eq!(g.single("key2"), None, "multi-valued keys have no single value");
    }

    #[test]
    fn printing_is_the_inverse_of_parsing() {
        for s in ["a=1", "a=1,2:b=x", "governor=ondemand,interactive:reps=5"] {
            assert_eq!(parse(s).to_string(), s);
        }
    }

    #[test]
    fn rejections_carry_byte_offsets() {
        assert_eq!(err(""), PropError { offset: 0, kind: PropErrorKind::EmptyGroup });
        assert_eq!(err("a=1:novalue"), PropError { offset: 4, kind: PropErrorKind::MissingEquals });
        assert_eq!(err("a=1:=2"), PropError { offset: 4, kind: PropErrorKind::EmptyKey });
        assert_eq!(err("a=1:a=2"), PropError { offset: 4, kind: PropErrorKind::DuplicateKey });
        assert_eq!(err("a=1:b=2,,3"), PropError { offset: 8, kind: PropErrorKind::EmptyValue });
        assert_eq!(err("a b=1"), PropError { offset: 0, kind: PropErrorKind::BadKey });
    }

    #[test]
    fn interval_expands_like_resctl_bench() {
        let g = parse("vrate-min=20:vrate-max=100:vrate-intvs=5");
        let points = g.expand().expect("expands");
        let values: Vec<&str> = points.iter().map(|p| p.get("vrate").unwrap()).collect();
        assert_eq!(values, ["20", "40", "60", "80", "100"]);
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_declaration_order() {
        let g = parse("g=a,b:r-min=1:r-max=2:r-intvs=2");
        let points = g.expand().expect("expands");
        let rendered: Vec<String> = points.iter().map(|p| p.to_string()).collect();
        assert_eq!(rendered, ["g=a:r=1", "g=a:r=2", "g=b:r=1", "g=b:r=2"]);
    }

    #[test]
    fn interval_errors_are_typed_and_placed() {
        let partial = parse("a=1:x-min=2").expand().expect_err("partial trio");
        assert_eq!(partial, PropError { offset: 4, kind: PropErrorKind::PartialInterval });
        let bad = parse("x-min=a:x-max=3:x-intvs=2").expand().expect_err("non-numeric");
        assert_eq!(bad, PropError { offset: 0, kind: PropErrorKind::BadIntervalNumber });
        let inverted = parse("x-min=5:x-max=3:x-intvs=2").expand().expect_err("min > max");
        assert_eq!(inverted.kind, PropErrorKind::EmptyInterval);
        let zero = parse("x-min=1:x-max=3:x-intvs=0").expand().expect_err("no points");
        assert_eq!(zero.kind, PropErrorKind::BadIntervalCount);
        let collide = parse("x=1:x-min=1:x-max=1:x-intvs=1").expand().expect_err("collision");
        assert_eq!(collide.kind, PropErrorKind::DuplicateKey);
    }

    #[test]
    fn value_offsets_address_the_canonical_text() {
        let g = parse("a=1,22:stat=p95-lag,p200-lag");
        assert_eq!(g.offset_of_value("stat", "p95-lag"), 12);
        assert_eq!(g.offset_of_value("stat", "p200-lag"), 20);
        // Unknown value points at the key; unknown key at the start.
        assert_eq!(g.offset_of_value("stat", "nope"), 7);
        assert_eq!(g.offset_of_value("zzz", "1"), 0);
    }

    #[test]
    fn point_projection_drops_fleet_knobs() {
        let point = PropPoint::new([("jitter-us", "1500"), ("reps", "5")]);
        assert_eq!(point.without(&["reps"]).to_string(), "jitter-us=1500");
        assert_eq!(point.get_u64("reps"), Some(5));
    }
}
