//! Governor tuning: scoring a grid of governor tunables against the
//! per-workload oracle (`interlag tune`).
//!
//! §IV of the paper characterises the stock governors at their shipped
//! tunable values and finds all of them far from the oracle. This module
//! asks the follow-up question: *how much of that gap is tuning?* A
//! [`PropGroup`](crate::propgroup::PropGroup) grid over a governor's
//! exported tunables (the same `key=val:k-min/k-max/k-intvs` grammar the
//! sweep matrix uses) expands into concrete [`GovernorSpec`]s, each grid
//! point replays the workload under its tuned governor, and every
//! repetition is scored by the study's own metrics — user irritation
//! under the §III-B "110 % of fastest" threshold rule and dynamic energy
//! — so a point's quality is its (irritation, energy) distance from the
//! oracle.
//!
//! The grammar mirrors cpufreq's sysfs vocabulary with integer values
//! (loads and steps in percent, times in milliseconds, frequencies in
//! kHz):
//!
//! | governor       | keys                                                         |
//! |----------------|--------------------------------------------------------------|
//! | `interactive`  | `go-hispeed-load` `hispeed-freq` `target-load` `min-sample-ms` `timer-ms` `input-boost` |
//! | `ondemand`     | `up-threshold` `sampling-ms` `down-factor`                   |
//! | `conservative` | `up-threshold` `down-threshold` `freq-step` `sampling-ms`    |
//! | `schedutil`    | `headroom-pct` `decay-pct` `rate-ms` `down-rate-ms`          |
//!
//! plus the fleet knobs `reps` and `jitter-us`, which shape the sweep
//! without entering any grid point. Every rejection is a byte-addressed
//! [`PropError`] like the parser's own: unknown tunables are
//! [`PropErrorKind::UnknownKey`] at the key, out-of-range values are
//! [`PropErrorKind::OutOfDomain`] at the value.
//!
//! Measurements here use the device's *ground-truth* interaction records
//! rather than the video matcher: tuning wants thousands of cheap,
//! perfectly deterministic replays, and the conformance suite already
//! pins ground truth to the matcher's output. Capture is disabled for
//! the same reason, so a tuning replay costs a fraction of a studied one.

use std::collections::BTreeMap;

use interlag_device::device::{CaptureMode, Device, RunArtifacts};
use interlag_device::dvfs::{FixedGovernor, Governor};
use interlag_evdev::time::SimDuration;
use interlag_evdev::trace::EventTrace;
use interlag_governors::conservative::{Conservative, ConservativeTunables};
use interlag_governors::interactive::{Interactive, InteractiveTunables};
use interlag_governors::ondemand::{Ondemand, OndemandTunables};
use interlag_governors::plan::PlanGovernor;
use interlag_governors::schedutil::{Schedutil, SchedutilTunables};
use interlag_power::opp::Frequency;
use interlag_power::opp::OppTable;
use interlag_workloads::gen::Workload;

use crate::error::InterlagError;
use crate::experiment::{jitter_events, Lab};
use crate::irritation::{user_irritation, ThresholdModel};
use crate::oracle::{build_oracle, OracleConfig};
use crate::profile::{LagEntry, LagProfile};
use crate::propgroup::{PropError, PropErrorKind, PropGroup, PropPoint};

/// Keys that shape the sweep rather than a governor: they are stripped
/// from every grid point before governor construction.
pub const FLEET_KEYS: [&str; 2] = ["reps", "jitter-us"];

/// A parsed, validated tuning grid: the canonical group, its expanded
/// governor points (fleet keys stripped) and the fleet shape.
#[derive(Debug, Clone)]
pub struct TuneGrid {
    /// The group as parsed — its canonical printing is the sweep's
    /// identity.
    pub group: PropGroup,
    /// One entry per grid point, in expansion order: the point (without
    /// fleet keys) and the governor it builds.
    pub points: Vec<(PropPoint, GovernorSpec)>,
    /// Repetitions per grid point (`reps`, default 1).
    pub reps: u32,
    /// Input-timing jitter applied per repetition (`jitter-us`,
    /// default 0; repetition 0 always replays untouched).
    pub jitter_us: u64,
}

/// A fully resolved governor configuration for one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GovernorSpec {
    /// The Android `interactive` governor.
    Interactive(InteractiveTunables),
    /// The `ondemand` governor.
    Ondemand(OndemandTunables),
    /// The `conservative` governor.
    Conservative(ConservativeTunables),
    /// The `schedutil` governor.
    Schedutil(SchedutilTunables),
}

impl GovernorSpec {
    /// The kernel name of the governor this spec builds.
    pub fn governor_name(&self) -> &'static str {
        match self {
            GovernorSpec::Interactive(_) => "interactive",
            GovernorSpec::Ondemand(_) => "ondemand",
            GovernorSpec::Conservative(_) => "conservative",
            GovernorSpec::Schedutil(_) => "schedutil",
        }
    }

    /// Instantiates the governor.
    pub fn build(&self) -> Box<dyn Governor> {
        match self {
            GovernorSpec::Interactive(t) => Box::new(Interactive::new(*t)),
            GovernorSpec::Ondemand(t) => Box::new(Ondemand::new(*t)),
            GovernorSpec::Conservative(t) => Box::new(Conservative::new(*t)),
            GovernorSpec::Schedutil(t) => Box::new(Schedutil::new(*t)),
        }
    }

    /// Parses one grid point against `group` (for byte-addressed
    /// diagnostics) and `table` (for frequency domains).
    ///
    /// # Errors
    ///
    /// [`PropErrorKind::UnknownKey`] for a tunable the selected governor
    /// does not expose, [`PropErrorKind::OutOfDomain`] for a value
    /// outside its range — both at the offending byte of the canonical
    /// group text.
    pub fn parse(
        point: &PropPoint,
        group: &PropGroup,
        table: &OppTable,
    ) -> Result<GovernorSpec, PropError> {
        let Some(governor) = point.get("governor") else {
            return Err(PropError { offset: 0, kind: PropErrorKind::UnknownKey });
        };
        let accepted: &[&str] = match governor {
            "interactive" => &[
                "go-hispeed-load",
                "hispeed-freq",
                "target-load",
                "min-sample-ms",
                "timer-ms",
                "input-boost",
            ],
            "ondemand" => &["up-threshold", "sampling-ms", "down-factor"],
            "conservative" => &["up-threshold", "down-threshold", "freq-step", "sampling-ms"],
            "schedutil" => &["headroom-pct", "decay-pct", "rate-ms", "down-rate-ms"],
            other => {
                return Err(PropError {
                    offset: group.offset_of_value("governor", other),
                    kind: PropErrorKind::OutOfDomain,
                })
            }
        };
        for (key, _) in point.pairs() {
            if key != "governor"
                && !FLEET_KEYS.contains(&key.as_str())
                && !accepted.contains(&key.as_str())
            {
                return Err(PropError {
                    offset: group.offset_of_value(key, ""),
                    kind: PropErrorKind::UnknownKey,
                });
            }
        }
        let knob = |key: &str, lo: u64, hi: u64| tunable_u64(point, group, key, lo, hi);
        Ok(match governor {
            "interactive" => {
                let mut t = InteractiveTunables::for_table(table);
                if let Some(load) = knob("go-hispeed-load", 1, 100)? {
                    t.go_hispeed_load = load as f64;
                }
                if let Some(khz) = knob(
                    "hispeed-freq",
                    u64::from(table.min_freq().as_khz()),
                    u64::from(table.max_freq().as_khz()),
                )? {
                    t.hispeed_freq = table.quantize_up(Frequency::from_khz(khz as u32));
                }
                if let Some(load) = knob("target-load", 1, 100)? {
                    t.target_load = load as f64;
                }
                if let Some(ms) = knob("min-sample-ms", 1, 1_000)? {
                    t.min_sample_time = SimDuration::from_millis(ms);
                }
                if let Some(ms) = knob("timer-ms", 1, 1_000)? {
                    t.timer_rate = SimDuration::from_millis(ms);
                }
                if let Some(boost) = knob("input-boost", 0, 1)? {
                    t.input_boost = boost == 1;
                }
                GovernorSpec::Interactive(t)
            }
            "ondemand" => {
                let mut t = OndemandTunables::default();
                if let Some(load) = knob("up-threshold", 1, 100)? {
                    t.up_threshold = load as f64;
                }
                if let Some(ms) = knob("sampling-ms", 1, 1_000)? {
                    t.sampling_rate = SimDuration::from_millis(ms);
                }
                if let Some(factor) = knob("down-factor", 1, 100)? {
                    t.sampling_down_factor = factor as u32;
                }
                GovernorSpec::Ondemand(t)
            }
            "conservative" => {
                let mut t = ConservativeTunables::default();
                if let Some(load) = knob("up-threshold", 1, 100)? {
                    t.up_threshold = load as f64;
                }
                if let Some(load) = knob("down-threshold", 0, 99)? {
                    t.down_threshold = load as f64;
                }
                if t.down_threshold >= t.up_threshold {
                    // The hysteresis band must be non-empty or the
                    // governor oscillates every sample.
                    let v = point.get("down-threshold").unwrap_or_default();
                    return Err(PropError {
                        offset: group.offset_of_value("down-threshold", v),
                        kind: PropErrorKind::OutOfDomain,
                    });
                }
                if let Some(step) = knob("freq-step", 1, 100)? {
                    t.freq_step_pct = step as f64;
                }
                if let Some(ms) = knob("sampling-ms", 1, 1_000)? {
                    t.sampling_rate = SimDuration::from_millis(ms);
                }
                GovernorSpec::Conservative(t)
            }
            "schedutil" => {
                let mut t = SchedutilTunables::default();
                if let Some(pct) = knob("headroom-pct", 100, 400)? {
                    t.headroom = pct as f64 / 100.0;
                }
                if let Some(pct) = knob("decay-pct", 0, 100)? {
                    t.decay = pct as f64 / 100.0;
                }
                if let Some(ms) = knob("rate-ms", 1, 1_000)? {
                    t.rate_limit = SimDuration::from_millis(ms);
                }
                if let Some(ms) = knob("down-rate-ms", 1, 1_000)? {
                    t.down_rate_limit = SimDuration::from_millis(ms);
                }
                GovernorSpec::Schedutil(t)
            }
            _ => unreachable!("governor validated above"),
        })
    }
}

/// One tunable's integer value from a point, range-checked against
/// `lo..=hi`; rejections point at the value's byte in the group text.
fn tunable_u64(
    point: &PropPoint,
    group: &PropGroup,
    key: &str,
    lo: u64,
    hi: u64,
) -> Result<Option<u64>, PropError> {
    let Some(value) = point.get(key) else { return Ok(None) };
    let out_of_domain = || PropError {
        offset: group.offset_of_value(key, value),
        kind: PropErrorKind::OutOfDomain,
    };
    let n: u64 = value.parse().map_err(|_| out_of_domain())?;
    if n < lo || n > hi {
        return Err(out_of_domain());
    }
    Ok(Some(n))
}

/// A fleet knob: a single-valued group key parsed as an integer in
/// `lo..=hi`. Multi-valued fleet knobs are rejected — the grid varies
/// governors, not sweep shapes.
fn fleet_u64(
    group: &PropGroup,
    key: &str,
    default: u64,
    lo: u64,
    hi: u64,
) -> Result<u64, PropError> {
    let Some(values) = group.get(key) else { return Ok(default) };
    let out_of_domain = |v: &str| PropError {
        offset: group.offset_of_value(key, v),
        kind: PropErrorKind::OutOfDomain,
    };
    let [value] = values else {
        return Err(out_of_domain(&values[1]));
    };
    let n: u64 = value.parse().map_err(|_| out_of_domain(value))?;
    if n < lo || n > hi {
        return Err(out_of_domain(value));
    }
    Ok(n)
}

/// Parses and validates a full tuning group against `table`.
///
/// Every grid point is validated eagerly, so a bad value anywhere in the
/// matrix rejects the whole group before anything runs.
///
/// # Errors
///
/// Any grammar rejection from [`PropGroup`] parsing or expansion, plus
/// the tuning-layer domains: a missing or unknown `governor`, a tunable
/// the governor does not expose, or a value outside its range.
///
/// # Examples
///
/// ```
/// use interlag_core::tune::parse_tune_group;
/// use interlag_power::opp::OppTable;
///
/// let table = OppTable::snapdragon_8074();
/// let grid = parse_tune_group(
///     "governor=interactive:go-hispeed-load-min=60:go-hispeed-load-max=95:\
///      go-hispeed-load-intvs=8:reps=2",
///     &table,
/// )
/// .expect("valid grid");
/// assert_eq!(grid.points.len(), 8);
/// assert_eq!(grid.reps, 2);
/// ```
pub fn parse_tune_group(text: &str, table: &OppTable) -> Result<TuneGrid, PropError> {
    let group: PropGroup = text.parse()?;
    let reps = fleet_u64(&group, "reps", 1, 1, 100)? as u32;
    let jitter_us = fleet_u64(&group, "jitter-us", 0, 0, 1_000_000)?;
    let mut points = Vec::new();
    let mut seen = Vec::new();
    for point in group.expand()? {
        let spec = GovernorSpec::parse(&point, &group, table)?;
        let point = point.without(&FLEET_KEYS);
        if !seen.contains(&point) {
            seen.push(point.clone());
            points.push((point, spec));
        }
    }
    Ok(TuneGrid { group, points, reps, jitter_us })
}

/// The per-workload reference a tuning sweep scores against: the
/// §III-B threshold model and the oracle's own (irritation, energy)
/// point.
#[derive(Debug, Clone)]
pub struct TuneReference {
    /// The recorded input trace every repetition jitters from.
    pub trace: EventTrace,
    /// The "110 % of the fastest frequency" threshold model.
    pub model: ThresholdModel,
    /// The oracle's total irritation, microseconds.
    pub oracle_irritation_us: u64,
    /// The oracle's dynamic energy, microjoules.
    pub oracle_energy_uj: u64,
    /// The oracle's mean ground-truth lag, microseconds.
    pub oracle_lag_us: u64,
}

/// One repetition's scores for one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneMeasurement {
    /// Mean ground-truth lag, microseconds.
    pub mean_lag_us: u64,
    /// Total user irritation under the reference model, microseconds.
    pub irritation_us: u64,
    /// Dynamic energy, microjoules.
    pub energy_uj: u64,
}

/// The ground-truth lag profile of a run: every serviced, non-spurious
/// interaction's [`true_lag`](interlag_device::device::InteractionRecord::true_lag).
pub fn ground_truth_profile(run: &RunArtifacts, config: &str) -> LagProfile {
    let mut profile = LagProfile::new(config);
    for rec in &run.interactions {
        if rec.spurious || !rec.triggered {
            continue;
        }
        let Some(lag) = rec.true_lag() else { continue };
        profile.push(LagEntry {
            interaction_id: rec.id,
            input_time: rec.input_time,
            lag,
            threshold: rec.category.threshold(),
            confidence: 1.0,
        });
    }
    profile
}

/// The capture-free replica of the lab's device: tuning replays need
/// ground truth and activity, not video.
fn quiet_device(lab: &Lab) -> Device {
    let mut config = lab.device().config().clone();
    config.capture = CaptureMode::None;
    Device::new(config)
}

/// Builds the tuning reference for `workload`: ground-truth profiles at
/// every fixed frequency, the §III-B threshold model over the fastest,
/// the oracle plan from [`build_oracle`], and the oracle's own scores.
///
/// # Errors
///
/// [`InterlagError::Device`] if any reference run fails.
pub fn tune_reference(lab: &Lab, workload: &Workload) -> Result<TuneReference, InterlagError> {
    let device = quiet_device(lab);
    let table = lab.device().config().opps.clone();
    let trace = workload.script.record_trace();
    let until = workload.run_until();
    let mut profiles: BTreeMap<Frequency, LagProfile> = BTreeMap::new();
    for opp in table.opps() {
        let mut gov = FixedGovernor::new(opp.freq);
        let run = device.run(
            &workload.script,
            interlag_evdev::replay::ReplayAgent::new(trace.clone()),
            &mut gov,
            until,
        )?;
        profiles.insert(opp.freq, ground_truth_profile(&run, &format!("fixed-{}", opp.freq)));
    }
    let reference =
        profiles.get(&table.max_freq()).cloned().unwrap_or_else(|| LagProfile::new("reference"));
    let model = ThresholdModel::paper_rule(reference);
    let oracle =
        build_oracle(&profiles, &OracleConfig::paper(lab.power_table().most_efficient_freq()));
    let mut gov = PlanGovernor::new("oracle", oracle.plan.clone());
    let run = device.run(
        &workload.script,
        interlag_evdev::replay::ReplayAgent::new(trace.clone()),
        &mut gov,
        until,
    )?;
    let profile = ground_truth_profile(&run, "oracle");
    Ok(TuneReference {
        trace,
        oracle_irritation_us: user_irritation(&profile, &model).total().as_micros(),
        oracle_energy_uj: energy_uj(lab, &run),
        oracle_lag_us: profile.mean_lag().as_micros(),
        model,
    })
}

/// Measures one `(grid point, repetition)` slot: replay the jittered
/// trace under the tuned governor and score it with the reference model.
///
/// The same `(spec, rep)` always produces the same measurement — the
/// whole path is deterministic — which is what lets sharded tuning
/// sweeps merge byte-identically at any worker or shard count.
///
/// # Errors
///
/// [`InterlagError::Device`] if the run fails.
pub fn measure_tune_point(
    lab: &Lab,
    workload: &Workload,
    reference: &TuneReference,
    spec: &GovernorSpec,
    rep: u32,
    jitter_us: u64,
) -> Result<TuneMeasurement, InterlagError> {
    let device = quiet_device(lab);
    let trace = jitter_events(&reference.trace, jitter_us, rep);
    let mut governor = spec.build();
    let run = device.run(
        &workload.script,
        interlag_evdev::replay::ReplayAgent::new(trace),
        &mut *governor,
        workload.run_until(),
    )?;
    let profile = ground_truth_profile(&run, spec.governor_name());
    Ok(TuneMeasurement {
        mean_lag_us: profile.mean_lag().as_micros(),
        irritation_us: user_irritation(&profile, &reference.model).total().as_micros(),
        energy_uj: energy_uj(lab, &run),
    })
}

/// Dynamic energy of a run in whole microjoules (the integer unit the
/// results database folds).
fn energy_uj(lab: &Lab, run: &RunArtifacts) -> u64 {
    (lab.meter().measure(&run.activity).dynamic_mj * 1_000.0).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_device::script::InteractionCategory;
    use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};

    fn table() -> OppTable {
        OppTable::snapdragon_8074()
    }

    fn tiny_workload() -> Workload {
        let mut b = WorkloadBuilder::new(0x70e);
        b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
        b.think_ms(1_500, 2_500);
        b.quick_tap("tap", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.build("tune-tiny", "tuning unit-test workload")
    }

    #[test]
    fn the_issue_grid_expands_to_specs() {
        let grid = parse_tune_group(
            "governor=interactive:go-hispeed-load-min=60:go-hispeed-load-max=95:\
             go-hispeed-load-intvs=8:reps=2:jitter-us=500",
            &table(),
        )
        .expect("valid grid");
        assert_eq!(grid.points.len(), 8);
        assert_eq!(grid.reps, 2);
        assert_eq!(grid.jitter_us, 500);
        let GovernorSpec::Interactive(t) = grid.points[0].1 else {
            panic!("expected interactive specs")
        };
        assert_eq!(t.go_hispeed_load, 60.0);
        let GovernorSpec::Interactive(t) = grid.points[7].1 else {
            panic!("expected interactive specs")
        };
        assert_eq!(t.go_hispeed_load, 95.0);
        // Untouched tunables keep their table defaults.
        assert_eq!(t.target_load, InteractiveTunables::for_table(&table()).target_load);
    }

    #[test]
    fn every_governor_parses_its_vocabulary() {
        let t = table();
        let grid =
            parse_tune_group("governor=ondemand:up-threshold=70:sampling-ms=40:down-factor=3", &t)
                .expect("ondemand grid");
        let GovernorSpec::Ondemand(o) = grid.points[0].1 else { panic!() };
        assert_eq!(o.up_threshold, 70.0);
        assert_eq!(o.sampling_rate, SimDuration::from_millis(40));
        assert_eq!(o.sampling_down_factor, 3);

        let grid = parse_tune_group(
            "governor=conservative:up-threshold=75:down-threshold=30:freq-step=10",
            &t,
        )
        .expect("conservative grid");
        let GovernorSpec::Conservative(c) = grid.points[0].1 else { panic!() };
        assert_eq!((c.up_threshold, c.down_threshold, c.freq_step_pct), (75.0, 30.0, 10.0));

        let grid = parse_tune_group(
            "governor=schedutil:headroom-pct=150:decay-pct=25:rate-ms=5:down-rate-ms=20",
            &t,
        )
        .expect("schedutil grid");
        let GovernorSpec::Schedutil(s) = grid.points[0].1 else { panic!() };
        assert_eq!(s.headroom, 1.5);
        assert_eq!(s.decay, 0.25);

        let grid = parse_tune_group("governor=interactive:hispeed-freq=960000:input-boost=0", &t)
            .expect("interactive grid");
        let GovernorSpec::Interactive(i) = grid.points[0].1 else { panic!() };
        assert_eq!(i.hispeed_freq, Frequency::from_mhz(960));
        assert!(!i.input_boost);
    }

    #[test]
    fn rejections_are_typed_and_byte_addressed() {
        let t = table();
        // Unknown tunable for the selected governor, at the key's byte.
        let e = parse_tune_group("governor=ondemand:go-hispeed-load=80", &t).unwrap_err();
        assert_eq!(e, PropError { offset: 18, kind: PropErrorKind::UnknownKey });
        // Out-of-range value, at the value's byte.
        let e = parse_tune_group("governor=ondemand:up-threshold=0", &t).unwrap_err();
        assert_eq!(e, PropError { offset: 31, kind: PropErrorKind::OutOfDomain });
        // Unknown governor, at its value.
        let e = parse_tune_group("governor=warpspeed", &t).unwrap_err();
        assert_eq!(e, PropError { offset: 9, kind: PropErrorKind::OutOfDomain });
        // Missing governor entirely.
        let e = parse_tune_group("up-threshold=50", &t).unwrap_err();
        assert_eq!(e.kind, PropErrorKind::UnknownKey);
        // Inverted conservative hysteresis band.
        let e = parse_tune_group("governor=conservative:up-threshold=40:down-threshold=60", &t)
            .unwrap_err();
        assert_eq!(e.kind, PropErrorKind::OutOfDomain);
        assert_eq!(e.offset, 53, "points at the down-threshold value");
        // Multi-valued fleet knob.
        let e = parse_tune_group("governor=ondemand:reps=1,2", &t).unwrap_err();
        assert_eq!(e.kind, PropErrorKind::OutOfDomain);
    }

    #[test]
    fn measurements_are_deterministic_and_oracle_scored() {
        let lab = Lab::with_defaults();
        let w = tiny_workload();
        let reference = tune_reference(&lab, &w).expect("reference");
        assert!(reference.oracle_energy_uj > 0, "oracle run consumed energy");

        let grid = parse_tune_group("governor=ondemand:up-threshold=95", &table()).expect("grid");
        let spec = &grid.points[0].1;
        let a = measure_tune_point(&lab, &w, &reference, spec, 1, 1_500).expect("rep 1");
        let b = measure_tune_point(&lab, &w, &reference, spec, 1, 1_500).expect("rep 1 again");
        assert_eq!(a, b, "same slot, same measurement");
        assert!(a.energy_uj > 0);
        assert!(a.mean_lag_us > 0);

        // A governor pinned near the bottom by construction (conservative
        // with a tiny step and huge thresholds) must irritate more than
        // the oracle reference.
        let slow = parse_tune_group(
            "governor=conservative:up-threshold=100:down-threshold=99:freq-step=1:sampling-ms=1000",
            &table(),
        )
        .expect("slow grid");
        let s = measure_tune_point(&lab, &w, &reference, &slow.points[0].1, 0, 0).expect("slow");
        assert!(
            s.irritation_us > reference.oracle_irritation_us,
            "a crippled governor scores worse than the oracle \
             ({} vs {} µs)",
            s.irritation_us,
            reference.oracle_irritation_us,
        );
    }
}
