//! The experiment laboratory: the paper's §III pipeline end to end.
//!
//! One [`Lab`] owns the simulated bench setup — device, HDMI capture,
//! calibrated power rig, suggester settings — and runs complete studies:
//!
//! 1. **Record** the workload's input trace.
//! 2. **Annotate** it once (Part A of Figure 4): reference execution at
//!    the fastest frequency, suggester + picker → annotation database.
//! 3. **Replay** under every configuration (14 fixed frequencies, the
//!    three governors, the oracle), repeating each run with small input
//!    jitter as the paper repeats runs to bound statistical error.
//! 4. **Mark up** every captured video with the matcher → lag profiles.
//! 5. **Meter** energy from the frequency/load traces, and score user
//!    irritation against 110 % of the fastest frequency's profile.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use interlag_device::device::{CaptureMode, Device, DeviceConfig, RunArtifacts};
use interlag_device::dvfs::{FixedGovernor, Governor};
use interlag_evdev::replay::ReplayAgent;
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_evdev::trace::EventTrace;
use interlag_faults::{
    FaultConfig, FaultStreams, FaultyCapture, FaultyGovernor, FaultyReplayer, WedgedGovernor,
};
use interlag_governors::plan::{FrequencyPlan, PlanGovernor};
use interlag_governors::{Conservative, Interactive, Ondemand};
use interlag_journal::CancelToken;
use interlag_obs::{Counter, Hist, Recorder};
use interlag_power::calibrate::{calibrate, CalibrationConfig, MeasuredPowerTable};
use interlag_power::energy::EnergyMeter;
use interlag_power::model::PowerModel;
use interlag_power::opp::Frequency;
use interlag_video::capture::HdmiCapture;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_workloads::gen::Workload;

use crate::annotation::{annotate, AnnotationDb, AnnotationStats, GroundTruthPicker};
use crate::checkpoint::StudyJournal;
use crate::error::InterlagError;
use crate::irritation::{user_irritation, ThresholdModel};
use crate::matcher::{mark_up_cancellable, MatchFailure, MatchPolicy};
use crate::oracle::{build_oracle, Oracle, OracleConfig};
use crate::profile::LagProfile;
use crate::stats::robust_mean;
use crate::suggester::{Suggester, SuggesterConfig};

/// The per-repetition watchdog: how long (in wall-clock time) one study
/// repetition attempt may run before it is cooperatively cancelled.
///
/// The deadline is checked at the cancellation points threaded through
/// the pipeline — every [`interlag_device::device::CANCEL_STRIDE`] device
/// quanta, every [`crate::matcher::MATCH_CANCEL_STRIDE`] matcher frames
/// and between escalation-ladder steps — so a wedged governor, a stalled
/// capture path or a runaway matcher walk cannot hang the sweep. A
/// cancelled attempt is charged against the retry budget; a repetition
/// whose final attempt was cancelled is recorded as
/// [`RepOutcome::TimedOut`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WatchdogConfig {
    /// No deadline: a repetition may run forever.
    Disabled,
    /// Deadline derived from the workload: `multiplier ×` the workload's
    /// simulated duration, read as wall-clock time, floored at one
    /// second. The simulator runs orders of magnitude faster than the
    /// simulated clock, so this default never fires on a healthy run even
    /// on a heavily loaded CI machine — it exists to catch runs making
    /// *no* forward progress.
    Auto {
        /// Wall-clock budget per simulated second.
        multiplier: u32,
    },
    /// A fixed wall-clock deadline per attempt.
    Fixed(std::time::Duration),
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::Auto { multiplier: 4 }
    }
}

impl WatchdogConfig {
    /// The wall-clock budget for one attempt of a workload that spans
    /// `sim_span` of simulated time, or `None` when disabled.
    pub fn budget_for(&self, sim_span: SimDuration) -> Option<std::time::Duration> {
        match *self {
            WatchdogConfig::Disabled => None,
            WatchdogConfig::Auto { multiplier } => {
                let us = sim_span.as_micros().saturating_mul(u64::from(multiplier));
                Some(std::time::Duration::from_micros(us).max(std::time::Duration::from_secs(1)))
            }
            WatchdogConfig::Fixed(d) => Some(d),
        }
    }
}

/// Laboratory configuration.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// The simulated device (capture mode is forced to HDMI for studies).
    pub device: DeviceConfig,
    /// Power-rig calibration settings.
    pub calibration: CalibrationConfig,
    /// Minimum still run required by the suggester.
    pub min_still_run: u32,
    /// Match tolerance stored into annotations.
    pub tolerance: MatchTolerance,
    /// Repetitions per configuration (the paper uses 5).
    pub reps: u32,
    /// Input-timing jitter between repetitions, microseconds.
    pub jitter_us: u64,
    /// Worker threads for the configuration×repetition sweep of
    /// [`Lab::study`]. Every run is a pure function of its (trace,
    /// governor) inputs, so any worker count produces bit-identical
    /// results; `1` forces the legacy serial sweep. Defaults to
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Fault injection for the study runs. `None` (the default) runs the
    /// exact legacy pipeline; `Some` wraps every stage boundary with the
    /// seeded injectors from `interlag-faults`. A quiescent configuration
    /// (all rates zero) produces bit-identical results to `None`. The
    /// annotation reference run is always fault-exempt — annotations must
    /// come from a clean execution, as in the paper's Part A.
    pub faults: Option<FaultConfig>,
    /// How many times a failed repetition is retried before being
    /// abandoned. Each retry re-derives its fault streams with the next
    /// attempt number — deterministic, backoff-free re-seeding — while the
    /// input jitter stays fixed per repetition, so a retry measures the
    /// same nominal run under a fresh fault pattern.
    pub retry_budget: u32,
    /// Matcher recovery ladder for fault-injected runs (ignored when
    /// `faults` is `None`): tolerances escalate within this bound before a
    /// repetition is declared failed.
    pub recovery: MatchPolicy,
    /// The per-repetition deadline. The default ([`WatchdogConfig::Auto`]
    /// with a generous multiplier) only ever fires on a repetition making
    /// no forward progress, so healthy studies are bit-identical with the
    /// watchdog on or off.
    pub watchdog: WatchdogConfig,
    /// Observability recorder threaded through the whole study path — the
    /// device loop, the matcher, the retry loop and the worker pool all
    /// record into it. Disabled by default: a disabled recorder costs one
    /// null check per call and the study output is bit-identical with or
    /// without it. Everything the recorder derives from simulated time is
    /// itself identical for any [`LabConfig::workers`] value.
    pub obs: Recorder,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            device: DeviceConfig::default(),
            calibration: CalibrationConfig::default(),
            min_still_run: 1,
            tolerance: MatchTolerance::EXACT,
            reps: 1,
            jitter_us: 1_500,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            faults: None,
            retry_budget: 2,
            recovery: MatchPolicy::paper_recovery(),
            watchdog: WatchdogConfig::default(),
            obs: Recorder::disabled(),
        }
    }
}

/// One repetition's measurements for one configuration.
#[derive(Debug, Clone)]
pub struct RepResult {
    /// The measured lag profile.
    pub profile: LagProfile,
    /// Dynamic (above-idle) energy, millijoules.
    pub dynamic_energy_mj: f64,
    /// Total user irritation under the study's threshold model.
    pub irritation: SimDuration,
    /// Lags the matcher could not resolve (should be zero).
    pub match_failures: usize,
    /// Malformed input events the device tolerated during the run.
    pub input_faults: usize,
}

/// How one repetition of a configuration concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum RepOutcome {
    /// The first attempt succeeded.
    Ok,
    /// One or more attempts failed but a retry succeeded.
    Retried {
        /// Total attempts made, including the successful one.
        attempts: u32,
    },
    /// Every attempt failed and the *final* attempt was cancelled by the
    /// rep watchdog. Like an abandoned repetition, the result slot is an
    /// empty placeholder excluded from aggregates; the distinct outcome
    /// keeps hangs visible separately from ordinary failures.
    TimedOut {
        /// Total attempts made.
        attempts: u32,
    },
    /// Every attempt failed; the repetition's result slot is an empty
    /// placeholder and is excluded from the configuration's aggregates.
    Abandoned {
        /// Total attempts made.
        attempts: u32,
        /// The last attempt's failure.
        cause: InterlagError,
    },
    /// The repetition belongs to another shard of a scoped sweep
    /// ([`StudyScope`]) and was neither computed nor journalled here: the
    /// result slot is an empty placeholder that only exists to keep the
    /// study shape rectangular. Skipped slots never reach a journal — the
    /// shard that owns the slot writes the real record.
    Skipped,
}

impl RepOutcome {
    /// `true` if the repetition never produced a measurement.
    pub fn is_abandoned(&self) -> bool {
        matches!(self, RepOutcome::Abandoned { .. })
    }

    /// `true` if the repetition's final attempt hit the watchdog deadline.
    pub fn is_timed_out(&self) -> bool {
        matches!(self, RepOutcome::TimedOut { .. })
    }

    /// `true` if the repetition produced a real measurement (its result
    /// slot is not a placeholder).
    pub fn is_measured(&self) -> bool {
        matches!(self, RepOutcome::Ok | RepOutcome::Retried { .. })
    }

    /// `true` if the repetition was left to another shard of a scoped
    /// sweep.
    pub fn is_skipped(&self) -> bool {
        matches!(self, RepOutcome::Skipped)
    }
}

/// All repetitions of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigSummary {
    /// Configuration name as the paper labels it.
    pub name: String,
    /// The pinned frequency for fixed configurations.
    pub freq: Option<Frequency>,
    /// Per-repetition results (one slot per repetition; abandoned slots
    /// hold an empty placeholder — check `outcomes`).
    pub reps: Vec<RepResult>,
    /// How each repetition concluded, parallel to `reps`.
    pub outcomes: Vec<RepOutcome>,
    /// `true` when the study injected faults: aggregate means then apply
    /// outlier rejection (median/MAD) so a fault-skewed repetition cannot
    /// drag the summary. `false` keeps the plain legacy means.
    pub robust: bool,
}

impl ConfigSummary {
    /// The repetitions that produced a measurement (abandoned and
    /// timed-out slots are skipped; with no recorded outcomes every slot
    /// counts).
    pub fn measured(&self) -> impl Iterator<Item = &RepResult> {
        self.reps.iter().enumerate().filter_map(|(i, r)| match self.outcomes.get(i) {
            Some(o) if !o.is_measured() => None,
            _ => Some(r),
        })
    }

    /// Number of repetitions abandoned after exhausting their retries.
    pub fn abandoned(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_abandoned()).count()
    }

    /// Number of repetitions whose final attempt was cancelled by the rep
    /// watchdog.
    pub fn timed_out(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_timed_out()).count()
    }

    /// Number of repetitions that needed at least one retry to succeed.
    pub fn retried(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, RepOutcome::Retried { .. })).count()
    }

    /// Mean dynamic energy across measured repetitions (outlier-rejected
    /// when the study ran with fault injection).
    pub fn mean_energy_mj(&self) -> f64 {
        let values: Vec<f64> = self.measured().map(|r| r.dynamic_energy_mj).collect();
        if values.is_empty() {
            return 0.0;
        }
        if self.robust {
            robust_mean(&values)
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }

    /// Mean irritation across measured repetitions (outlier-rejected when
    /// the study ran with fault injection).
    pub fn mean_irritation(&self) -> SimDuration {
        if self.robust {
            let values: Vec<f64> =
                self.measured().map(|r| r.irritation.as_micros() as f64).collect();
            if values.is_empty() {
                return SimDuration::ZERO;
            }
            return SimDuration::from_micros(robust_mean(&values).round() as u64);
        }
        let mut n = 0u64;
        let mut total = SimDuration::ZERO;
        for r in self.measured() {
            total += r.irritation;
            n += 1;
        }
        if n == 0 {
            SimDuration::ZERO
        } else {
            total / n
        }
    }

    /// Every measured lag, pooled across repetitions (Figure 11's violins
    /// pool repetitions the same way).
    pub fn pooled_lags_ms(&self) -> Vec<f64> {
        self.measured().flat_map(|r| r.profile.lags_ms()).collect()
    }
}

/// A complete per-workload study: Figures 11–14 read straight out of it.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Which workload was studied.
    pub workload: String,
    /// Annotation-session statistics (Part A).
    pub annotation: AnnotationStats,
    /// The annotation database (reusable for further runs).
    pub db: AnnotationDb,
    /// Fixed-frequency configurations, slowest first.
    pub fixed: Vec<ConfigSummary>,
    /// The governors, in the paper's order: conservative, interactive,
    /// ondemand.
    pub governors: Vec<ConfigSummary>,
    /// The oracle.
    pub oracle: ConfigSummary,
    /// The oracle's plan and per-lag decisions.
    pub oracle_detail: Oracle,
}

impl StudyResult {
    /// All configurations in the paper's plotting order: fixed slowest →
    /// fastest, then conservative, interactive, ondemand, oracle.
    pub fn all_configs(&self) -> impl Iterator<Item = &ConfigSummary> {
        self.fixed.iter().chain(self.governors.iter()).chain(std::iter::once(&self.oracle))
    }

    /// A configuration by name.
    pub fn config(&self, name: &str) -> Option<&ConfigSummary> {
        self.all_configs().find(|c| c.name == name)
    }

    /// Mean energy normalised to the oracle, the y-axis of Figure 12
    /// (right) and Figure 14 (top).
    pub fn energy_normalised(&self, config: &ConfigSummary) -> f64 {
        let oracle = self.oracle.mean_energy_mj();
        if oracle == 0.0 {
            return 0.0;
        }
        config.mean_energy_mj() / oracle
    }
}

/// Everything one study repetition needs besides the attempt number:
/// its position in the sweep and the study's shared inputs. Built per
/// repetition so the retry loop only re-derives the fault streams.
struct RepContext<'a> {
    workload: &'a Workload,
    trace: &'a EventTrace,
    fc: &'a FaultConfig,
    db: &'a AnnotationDb,
    name: &'a str,
    config: usize,
    rep: u32,
}

/// Which half of a sharded sweep a [`StudyScope`] selects from.
///
/// The oracle's plan is derived from the *complete* stage-1 profile set,
/// which no single shard can know locally, so a sharded sweep dispatches
/// in two waves: stage-1 shards first, then oracle shards resuming from
/// the merged stage-1 journal (every stage-1 slot replays from cache, so
/// the plan each oracle shard derives is identical to a single-process
/// run's by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepStage {
    /// Fixed frequencies and the kernel governors (the first
    /// `(n_fixed + 3) × reps` jobs of the sweep grid).
    Stage1,
    /// The oracle configuration's repetitions.
    Oracle,
}

/// Restricts a study to one shard of the `(configuration, repetition)`
/// grid: slots this shard is not assigned come back as
/// [`RepOutcome::Skipped`] placeholders (unless the journal already
/// caches them, in which case they replay as usual).
///
/// Assignment is round-robin so the same `(shard, of, stage)` triple
/// always selects the same slots — the supervisor and the agent compute
/// the assignment independently and must agree. The scope is *not* part
/// of [`study_fingerprint`](crate::checkpoint::study_fingerprint):
/// journalled records are shard-independent, which is what makes shard
/// journals mergeable in the first place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StudyScope {
    /// This shard's index, `0 ≤ shard < of`.
    pub shard: u32,
    /// Total shard count in this wave.
    pub of: u32,
    /// Which wave of the sweep this shard belongs to.
    pub stage: SweepStage,
}

impl StudyScope {
    /// `true` when this scope owns stage-1 slot `(config, rep)` of a
    /// sweep with `reps` repetitions per configuration.
    pub fn owns_stage1(&self, config: usize, rep: u32, reps: u32) -> bool {
        self.stage == SweepStage::Stage1
            && (config * reps as usize + rep as usize) % self.of.max(1) as usize
                == self.shard as usize
    }

    /// `true` when this scope owns oracle repetition `rep`.
    pub fn owns_oracle(&self, rep: u32) -> bool {
        self.stage == SweepStage::Oracle && rep % self.of.max(1) == self.shard
    }
}

/// Optional study machinery: the durable journal to checkpoint into (and
/// replay from), and an externally ingested input trace.
///
/// [`Lab::study`] is `study_with` under default options; the CLI's
/// `--journal`/`--resume`/`--events` flags all funnel through here.
#[derive(Debug, Default)]
pub struct StudyOptions<'a> {
    /// Checkpoint every completed repetition into this journal and replay
    /// any repetition it already holds. The journal's fingerprint is the
    /// caller's problem: open it with [`StudyJournal::resume`] against
    /// [`crate::checkpoint::study_fingerprint`] of the same trace and
    /// config, or stale records will (correctly) be ignored.
    pub journal: Option<&'a StudyJournal>,
    /// Replay this trace instead of recording one from the workload
    /// script — the hardened-ingestion path for traces loaded from disk
    /// (possibly with salvage-dropped lines).
    pub trace: Option<EventTrace>,
    /// Run only this shard of the sweep grid; unowned slots come back as
    /// [`RepOutcome::Skipped`] placeholders instead of being computed.
    /// `None` (the default) runs the whole grid.
    pub scope: Option<StudyScope>,
}

/// The simulated laboratory.
#[derive(Debug)]
pub struct Lab {
    config: LabConfig,
    device: Device,
    meter: EnergyMeter,
    suggester: Suggester,
    mask: Mask,
}

impl Lab {
    /// Sets up the lab: builds the device and calibrates the power rig
    /// with the paper's micro-benchmark procedure.
    pub fn new(mut config: LabConfig) -> Self {
        config.device.capture = CaptureMode::Hdmi;
        // The device loop records into the same sink as the lab, so one
        // recorder sees the whole pipeline.
        config.device.obs = config.obs.clone();
        let measured =
            calibrate(&config.device.opps, &PowerModel::krait_like(), &config.calibration);
        let screen = config.device.screen;
        // The standard mask set: status bar (clock), cursor, spinner.
        let mask = {
            let mut m = screen.status_bar_mask();
            m.exclude(screen.cursor_rect);
            m.exclude(screen.spinner_rect);
            m
        };
        let suggester = Suggester::new(SuggesterConfig {
            mask: mask.clone(),
            tolerance: config.tolerance,
            min_still_run: config.min_still_run,
        });
        let device = Device::new(config.device.clone());
        Lab { config, device, meter: EnergyMeter::new(measured), suggester, mask }
    }

    /// The lab with default settings.
    pub fn with_defaults() -> Self {
        Lab::new(LabConfig::default())
    }

    /// The calibrated power table (the oracle's efficient frequency comes
    /// from here).
    pub fn power_table(&self) -> &MeasuredPowerTable {
        self.meter.table()
    }

    /// The energy meter, for measuring runs outside [`Lab::study`]
    /// (Figure 3 meters a single window of two runs).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The device in use.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Executes one run of `workload` under `governor`, replaying `trace`.
    ///
    /// # Errors
    ///
    /// [`InterlagError::Device`] if the device run fails.
    pub fn run(
        &self,
        workload: &Workload,
        trace: EventTrace,
        governor: &mut dyn Governor,
    ) -> Result<RunArtifacts, InterlagError> {
        Ok(self.device.run(
            &workload.script,
            ReplayAgent::new(trace),
            governor,
            workload.run_until(),
        )?)
    }

    /// Part A: annotates the workload from a reference execution at the
    /// fastest fixed frequency, with the ground-truth picker playing the
    /// human. Returns the database, session statistics and the reference
    /// run itself. The reference run is never fault-injected.
    ///
    /// # Errors
    ///
    /// [`InterlagError::Device`] if the reference run fails.
    pub fn annotate_workload(
        &self,
        workload: &Workload,
    ) -> Result<(AnnotationDb, AnnotationStats, RunArtifacts), InterlagError> {
        self.annotate_workload_from(workload, workload.script.record_trace())
    }

    /// [`Lab::annotate_workload`] replaying a caller-supplied trace — the
    /// path a study takes when its input events were ingested from disk
    /// rather than recorded from the script.
    ///
    /// # Errors
    ///
    /// [`InterlagError::Device`] if the reference run fails.
    pub fn annotate_workload_from(
        &self,
        workload: &Workload,
        trace: EventTrace,
    ) -> Result<(AnnotationDb, AnnotationStats, RunArtifacts), InterlagError> {
        let _span = self.config.obs.wall_span("annotate");
        self.config.obs.count(Counter::AnnotateRuns, 1);
        let mut reference_gov = FixedGovernor::new(self.config.device.opps.max_freq());
        let run = self.run(workload, trace, &mut reference_gov)?;
        let picker = GroundTruthPicker::new(&run);
        let (db, stats) = annotate(
            &run,
            &self.suggester,
            &picker,
            &self.mask,
            self.config.tolerance,
            &workload.name,
        );
        Ok((db, stats, run))
    }

    /// Part B for one run: marks up the video and meters the energy.
    /// Irritation is filled in later once the threshold model exists.
    fn measure(&self, run: &RunArtifacts, db: &AnnotationDb, name: &str) -> RepResult {
        self.measure_cancellable(run, db, name, &CancelToken::none())
            .expect("an uncancellable measurement cannot time out")
    }

    /// [`Lab::measure`] under a watchdog: the matcher walk polls `cancel`,
    /// and a cancelled markup surfaces as [`InterlagError::Timeout`]
    /// rather than a partially-matched profile — a half-measured
    /// repetition must never be journalled or aggregated as if complete.
    ///
    /// # Errors
    ///
    /// [`InterlagError::Timeout`] if `cancel` fired during the markup.
    fn measure_cancellable(
        &self,
        run: &RunArtifacts,
        db: &AnnotationDb,
        name: &str,
        cancel: &CancelToken,
    ) -> Result<RepResult, InterlagError> {
        let video = run.video.as_ref().expect("study runs capture video");
        let (profile, failures) = {
            let _span = self.config.obs.wall_span("match");
            mark_up_cancellable(
                video,
                &run.lag_beginnings(),
                db,
                name,
                &MatchPolicy::strict(),
                &self.config.obs,
                cancel,
            )
        };
        if failures.iter().any(|&(_, f)| f == MatchFailure::Cancelled) {
            return Err(InterlagError::Timeout);
        }
        let energy = self.meter.measure(&run.activity);
        Ok(RepResult {
            profile,
            dynamic_energy_mj: energy.dynamic_mj,
            irritation: SimDuration::ZERO,
            match_failures: failures.len(),
            input_faults: run.input_faults,
        })
    }

    /// One fault-injected attempt of a study repetition: every stage
    /// boundary wrapped with the injectors, streams derived from
    /// `(seed, config, rep, attempt)`, markup with tolerance escalation.
    /// Any stage failure — including lags the recovery ladder could not
    /// resolve — comes back as an error for the retry loop. The repetition
    /// coordinates and shared inputs travel in a [`RepContext`]; only the
    /// attempt number varies between retries.
    fn faulted_attempt(
        &self,
        ctx: &RepContext<'_>,
        attempt: u32,
        governor: &mut dyn Governor,
        cancel: &CancelToken,
    ) -> Result<RepResult, InterlagError> {
        let fc = ctx.fc;
        let mut streams =
            FaultStreams::derive(fc.seed, ctx.config as u64, ctx.rep as u64, attempt as u64);
        let replayer = FaultyReplayer::new(
            ReplayAgent::new(self.jittered_trace(ctx.trace, ctx.rep)),
            fc.replay,
            streams.replay,
        );
        let mut governor = FaultyGovernor::new(governor, fc.dvfs, streams.dvfs);
        // The wedge wraps outermost: a wedged attempt stalls wall-clock
        // time without touching simulated decisions, which is exactly what
        // the watchdog token passed below exists to cancel.
        let mut governor = WedgedGovernor::new(&mut governor, fc.wedge, &mut streams.wedge);
        let mut capture = FaultyCapture::new(HdmiCapture::new(), fc.capture, streams.capture);
        let run = {
            let _span = self.config.obs.wall_span("replay");
            self.device.run_with_capture_cancellable(
                &ctx.workload.script,
                replayer,
                &mut governor,
                ctx.workload.run_until(),
                &mut capture,
                cancel,
            )?
        };
        let video = run.video.as_ref().ok_or(InterlagError::MissingVideo)?;
        let (profile, failures) = {
            let _span = self.config.obs.wall_span("match");
            mark_up_cancellable(
                video,
                &run.lag_beginnings(),
                ctx.db,
                ctx.name,
                &self.config.recovery,
                &self.config.obs,
                cancel,
            )
        };
        if let Some(&(interaction_id, failure)) = failures.first() {
            if failures.iter().any(|&(_, f)| f == MatchFailure::Cancelled) {
                return Err(InterlagError::Timeout);
            }
            return Err(InterlagError::Match { interaction_id, failure });
        }
        let mut power_rng = streams.power;
        let (activity, _) = fc.power.perturb(&run.activity, &mut power_rng);
        let energy = self.meter.measure(&activity);
        Ok(RepResult {
            profile,
            dynamic_energy_mj: energy.dynamic_mj,
            irritation: SimDuration::ZERO,
            match_failures: 0,
            input_faults: run.input_faults,
        })
    }

    /// The self-healing repetition loop: run an attempt under a fresh
    /// watchdog token, retry with a re-derived fault stream on failure,
    /// abandon with the last cause once the budget is spent. A
    /// watchdog-cancelled attempt is charged against the same budget; if
    /// the *final* attempt timed out the repetition is recorded as
    /// [`RepOutcome::TimedOut`]. Abandoned and timed-out slots carry an
    /// empty profile so result shapes stay rectangular; aggregates skip
    /// them via the recorded outcome.
    fn rep_with_retries<A>(
        &self,
        name: &str,
        wall_budget: Option<std::time::Duration>,
        mut attempt_fn: A,
    ) -> (RepResult, RepOutcome)
    where
        A: FnMut(u32, &CancelToken) -> Result<RepResult, InterlagError>,
    {
        let budget = self.config.retry_budget;
        let mut last_err = None;
        for attempt in 0..=budget {
            let cancel = match wall_budget {
                Some(d) => CancelToken::with_budget(d),
                None => CancelToken::none(),
            };
            match attempt_fn(attempt, &cancel) {
                Ok(result) => {
                    let outcome = if attempt == 0 {
                        RepOutcome::Ok
                    } else {
                        RepOutcome::Retried { attempts: attempt + 1 }
                    };
                    return (result, outcome);
                }
                Err(e) => {
                    if e == InterlagError::Timeout {
                        self.config.obs.count(Counter::WatchdogFires, 1);
                    }
                    last_err = Some(e);
                }
            }
        }
        let cause = last_err.expect("retry loop made at least one attempt");
        let placeholder = placeholder_result(name);
        let outcome = if cause == InterlagError::Timeout {
            RepOutcome::TimedOut { attempts: budget + 1 }
        } else {
            RepOutcome::Abandoned { attempts: budget + 1, cause }
        };
        (placeholder, outcome)
    }

    /// Jitters input timings by ±`jitter_us` (repetition `rep` > 0), the
    /// run-to-run variation a real rig sees. See [`jitter_events`].
    fn jittered_trace(&self, trace: &EventTrace, rep: u32) -> EventTrace {
        jitter_events(trace, self.config.jitter_us, rep)
    }

    /// Runs `count` independent jobs across the configured worker threads
    /// and returns their results in job order. Every job is a pure
    /// function of its index, so the output is identical for any worker
    /// count; with one worker (or one job) the jobs simply run inline.
    fn run_matrix<T, F>(&self, count: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let obs = &self.config.obs;
        let workers = self.config.workers.max(1).min(count.max(1));
        if workers == 1 {
            return (0..count)
                .map(|i| {
                    obs.count(Counter::WorkerJobs, 1);
                    job(i)
                })
                .collect();
        }
        // A shared-counter work queue: each worker claims the next
        // unclaimed job until none remain. Slots are per-job, so workers
        // never contend on a result lock while another job is running.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            let (next, slots, job) = (&next, &slots, &job);
            for w in 0..workers {
                s.spawn(move || {
                    // Tag the thread so wall spans land on this worker's
                    // trace track, and account its busy/idle split.
                    interlag_obs::set_worker(w as u32 + 1);
                    let started = std::time::Instant::now();
                    let mut busy = std::time::Duration::ZERO;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let result = job(i);
                        busy += t0.elapsed();
                        obs.count(Counter::WorkerJobs, 1);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    }
                    if obs.is_enabled() {
                        let total = started.elapsed();
                        obs.worker_time(
                            w as u32 + 1,
                            busy.as_nanos() as u64,
                            total.saturating_sub(busy).as_nanos() as u64,
                        );
                    }
                    interlag_obs::set_worker(0);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("work queue covered every job")
            })
            .collect()
    }

    /// Runs the full study for one workload: annotate once, then replay
    /// under every fixed frequency, every governor and the oracle, with
    /// the configured repetitions.
    ///
    /// The configuration×repetition sweep — by far the dominant cost —
    /// runs on [`LabConfig::workers`] threads. Each (configuration,
    /// repetition) run is an independent pure function of the recorded
    /// trace and the governor, so results are reassembled in the paper's
    /// deterministic order and are bit-identical to a serial sweep. The
    /// oracle runs in a second stage because its plan is built from the
    /// fixed-frequency profiles of the first.
    ///
    /// With [`LabConfig::faults`] set, every run (except the annotation
    /// reference) goes through the fault injectors, failed repetitions are
    /// retried up to [`LabConfig::retry_budget`] times with re-derived
    /// fault streams, and each repetition's [`RepOutcome`] is recorded in
    /// its [`ConfigSummary`]. A repetition that exhausts its budget is
    /// abandoned — reported with its cause, excluded from aggregates — and
    /// the study still completes.
    ///
    /// # Errors
    ///
    /// [`InterlagError::Device`] if the fault-exempt annotation reference
    /// run fails; injected faults never abort the study.
    pub fn study(&self, workload: &Workload) -> Result<StudyResult, InterlagError> {
        self.study_with(workload, StudyOptions::default())
    }

    /// [`Lab::study`] with [`StudyOptions`]: optionally checkpointing
    /// every completed repetition into a durable journal (and replaying
    /// the repetitions an interrupted sweep already paid for), and
    /// optionally replaying an externally ingested trace.
    ///
    /// Journalled and resumed studies are *byte-identical* to an
    /// uninterrupted run at any worker count: each repetition is a pure
    /// function of its coordinates, the journal stores results in
    /// bit-exact form, and irritation — the only cross-repetition derived
    /// quantity — is recomputed after reassembly in both paths.
    ///
    /// # Errors
    ///
    /// As for [`Lab::study`].
    pub fn study_with(
        &self,
        workload: &Workload,
        options: StudyOptions<'_>,
    ) -> Result<StudyResult, InterlagError> {
        const GOVERNOR_NAMES: [&str; 3] = ["conservative", "interactive", "ondemand"];
        let obs = &self.config.obs;
        let _study_span = obs.wall_span("study");
        let trace = options.trace.clone().unwrap_or_else(|| workload.script.record_trace());
        let (db, annotation, reference_run) =
            self.annotate_workload_from(workload, trace.clone())?;
        let opps = self.config.device.opps.clone();
        let reps = self.config.reps.max(1);
        let faults = self.config.faults;
        let robust = faults.as_ref().is_some_and(|f| !f.is_quiescent());
        let wall_budget =
            self.config.watchdog.budget_for(workload.run_until().saturating_since(SimTime::ZERO));
        let journal = options.journal;
        let scope = options.scope;
        if let Some(j) = journal {
            obs.count(Counter::JournalTornRecords, j.torn() as u64);
        }
        // Journal interposition for one repetition slot: replay the cached
        // result if the journal holds one, otherwise compute and append.
        // Slots a scoped (sharded) study does not own are skipped with a
        // placeholder — never computed, never journalled — unless the
        // journal already caches them (an oracle-wave agent replays the
        // whole merged stage-1 prefix this way).
        let journalled = |config: usize,
                          rep: u32,
                          owned: bool,
                          name: &str,
                          compute: &mut dyn FnMut() -> (RepResult, RepOutcome)|
         -> (RepResult, RepOutcome) {
            if let Some(j) = journal {
                if let Some(hit) = j.cached(config, rep) {
                    obs.count(Counter::JournalReplayedReps, 1);
                    return hit;
                }
            }
            if !owned {
                return (placeholder_result(name), RepOutcome::Skipped);
            }
            let out = compute();
            if let Some(j) = journal {
                j.record(config, rep, &out.0, &out.1);
                obs.count(Counter::JournalAppends, 1);
            }
            out
        };

        // --- stage 1: fixed frequencies and governors --------------------
        // Job i = configuration (i / reps), repetition (i % reps), with
        // configurations ordered as the paper plots them: fixed slowest →
        // fastest, then conservative, interactive, ondemand.
        let freqs: Vec<Frequency> = opps.frequencies().collect();
        let n_fixed = freqs.len();
        let per_rep = reps as usize;
        // One repetition of one configuration, with the governor built
        // fresh by the caller; retries reuse the governor (its `init`
        // resets state) but re-derive every fault stream.
        let run_rep = |config: usize,
                       rep: u32,
                       gov: &mut dyn Governor,
                       name: &str|
         -> (RepResult, RepOutcome) {
            match &faults {
                None => self.rep_with_retries(name, wall_budget, |_, cancel| {
                    let run = {
                        let _span = obs.wall_span("replay");
                        self.device.run_cancellable(
                            &workload.script,
                            ReplayAgent::new(self.jittered_trace(&trace, rep)),
                            &mut *gov,
                            workload.run_until(),
                            cancel,
                        )?
                    };
                    self.measure_cancellable(&run, &db, name, cancel)
                }),
                Some(fc) => {
                    let ctx =
                        RepContext { workload, trace: &trace, fc, db: &db, name, config, rep };
                    self.rep_with_retries(name, wall_budget, |attempt, cancel| {
                        self.faulted_attempt(&ctx, attempt, &mut *gov, cancel)
                    })
                }
            }
        };
        // Per-repetition telemetry: outcome counters (commutative, so
        // identical at any worker count) plus — when recording — the
        // repetition's simulated-time track with its stage and lag spans.
        // Everything here derives from simulated time or fixed inputs, so
        // the sim-axis exports stay byte-stable across worker counts.
        let trace_end_us = trace.iter().last().map(|e| e.time.as_micros()).unwrap_or(0);
        let record_rep = |name: &str, rep: u32, (result, outcome): &(RepResult, RepOutcome)| {
            // Skipped slots belong to another shard: they did no work here
            // and must not count as repetitions of this (partial) study.
            if outcome.is_skipped() {
                return;
            }
            obs.count(Counter::StudyReps, 1);
            match outcome {
                RepOutcome::Ok => {
                    obs.count(Counter::RepsOk, 1);
                    obs.observe(Hist::RetryAttemptsPerRep, 1);
                }
                RepOutcome::Retried { attempts } => {
                    obs.count(Counter::RepsRetried, 1);
                    obs.count(Counter::RetryAttempts, u64::from(attempts - 1));
                    obs.observe(Hist::RetryAttemptsPerRep, u64::from(*attempts));
                }
                RepOutcome::TimedOut { attempts } => {
                    obs.count(Counter::RepsTimedOut, 1);
                    obs.count(Counter::RetryAttempts, u64::from(attempts - 1));
                    obs.observe(Hist::RetryAttemptsPerRep, u64::from(*attempts));
                }
                RepOutcome::Abandoned { attempts, .. } => {
                    obs.count(Counter::RepsAbandoned, 1);
                    obs.count(Counter::RetryAttempts, u64::from(attempts - 1));
                    obs.observe(Hist::RetryAttemptsPerRep, u64::from(*attempts));
                }
                RepOutcome::Skipped => unreachable!("skipped slots return early above"),
            }
            if obs.is_enabled() {
                let track = obs.track(&format!("{name}/rep{rep}"));
                obs.sim_span("replay", track, 0, trace_end_us);
                obs.sim_span("capture", track, 0, workload.run_until().as_micros());
                for e in result.profile.entries() {
                    obs.sim_span(
                        "lag",
                        track,
                        e.input_time.as_micros(),
                        (e.input_time + e.lag).as_micros(),
                    );
                }
            }
        };
        let results = self.run_matrix((n_fixed + GOVERNOR_NAMES.len()) * per_rep, |i| {
            let _span = obs.wall_span("study-rep");
            let config = i / per_rep;
            let rep = (i % per_rep) as u32;
            let owned = scope.is_none_or(|s| s.owns_stage1(config, rep, reps));
            if config < n_fixed {
                let freq = freqs[config];
                let name = format!("fixed-{freq}");
                let out = journalled(config, rep, owned, &name, &mut || {
                    if freq == opps.max_freq() && rep == 0 {
                        // Reuse the annotation reference run: it doubles as
                        // the fastest configuration's first repetition and
                        // stays fault-exempt even in a fault-injected study.
                        (self.measure(&reference_run, &db, &name), RepOutcome::Ok)
                    } else {
                        let mut gov = FixedGovernor::new(freq);
                        run_rep(config, rep, &mut gov, &name)
                    }
                });
                record_rep(&name, rep, &out);
                out
            } else {
                let which = GOVERNOR_NAMES[config - n_fixed];
                let out = journalled(config, rep, owned, which, &mut || {
                    let mut conservative;
                    let mut interactive;
                    let mut ondemand;
                    let gov: &mut dyn Governor = match which {
                        "conservative" => {
                            conservative = Conservative::default();
                            &mut conservative
                        }
                        "interactive" => {
                            interactive = Interactive::for_table(&opps);
                            &mut interactive
                        }
                        _ => {
                            ondemand = Ondemand::default();
                            &mut ondemand
                        }
                    };
                    run_rep(config, rep, gov, which)
                });
                record_rep(which, rep, &out);
                out
            }
        });

        // Reassemble in paper order: the job layout above is config-major,
        // so each summary takes the next `reps` results.
        let mut results = results.into_iter();
        let mut take_config = |name: String, freq: Option<Frequency>| {
            let (reps, outcomes): (Vec<RepResult>, Vec<RepOutcome>) =
                results.by_ref().take(per_rep).unzip();
            ConfigSummary { name, freq, reps, outcomes, robust }
        };
        let fixed: Vec<ConfigSummary> =
            freqs.iter().map(|&freq| take_config(format!("fixed-{freq}"), Some(freq))).collect();
        let governors: Vec<ConfigSummary> =
            GOVERNOR_NAMES.iter().map(|&which| take_config(which.to_string(), None)).collect();

        // The threshold models: 110 % of the fastest frequency's profile,
        // one per repetition — each repetition jitters the input timings,
        // so a lag must be compared against the reference measured with
        // the *same* inputs (otherwise frame-grid quantisation leaks a
        // few spurious milliseconds of irritation into the baselines). If
        // a fastest-frequency repetition was abandoned, its model falls
        // back to the first surviving repetition (repetition 0 reuses the
        // fault-exempt reference run, so one always survives).
        let fastest = fixed.last().expect("at least one OPP");
        let fallback_model_profile = fastest
            .measured()
            .next()
            .map(|r| r.profile.clone())
            .unwrap_or_else(|| fastest.reps[0].profile.clone());
        let models: Vec<ThresholdModel> = fastest
            .reps
            .iter()
            .zip(&fastest.outcomes)
            .map(|(r, o)| {
                let profile = if o.is_measured() {
                    r.profile.clone()
                } else {
                    fallback_model_profile.clone()
                };
                ThresholdModel::paper_rule(profile)
            })
            .collect();

        // --- stage 2: oracle ---------------------------------------------
        // Needs stage 1: the plan is derived from the fixed-frequency
        // profiles — the first surviving repetition of each (repetition 0
        // unless faults abandoned it).
        let fixed_profiles: BTreeMap<Frequency, LagProfile> = fixed
            .iter()
            .filter_map(|c| {
                let rep = c.measured().next()?;
                Some((c.freq.expect("fixed configs have a frequency"), rep.profile.clone()))
            })
            .collect();
        let oracle_cfg = OracleConfig::paper(self.power_table().most_efficient_freq());
        // A scoped stage-1 shard may own no fixed-frequency slot at all
        // (and never owns an oracle slot), leaving it nothing to build the
        // oracle from; a degenerate constant-frequency plan keeps the
        // partial result well-formed without running anything.
        let oracle_detail = if fixed_profiles.is_empty() {
            Oracle { plan: FrequencyPlan::new(opps.max_freq()), decisions: Vec::new() }
        } else {
            build_oracle(&fixed_profiles, &oracle_cfg)
        };
        let oracle_results: Vec<(RepResult, RepOutcome)> = self.run_matrix(per_rep, |rep| {
            let _span = obs.wall_span("study-rep");
            let config = n_fixed + GOVERNOR_NAMES.len();
            let owned = scope.is_none_or(|s| s.owns_oracle(rep as u32));
            let out = journalled(config, rep as u32, owned, "oracle", &mut || {
                let mut gov = PlanGovernor::new("oracle", oracle_detail.plan.clone());
                run_rep(config, rep as u32, &mut gov, "oracle")
            });
            record_rep("oracle", rep as u32, &out);
            out
        });
        let (oracle_reps, oracle_outcomes): (Vec<RepResult>, Vec<RepOutcome>) =
            oracle_results.into_iter().unzip();
        let oracle_summary = ConfigSummary {
            name: "oracle".to_string(),
            freq: None,
            reps: oracle_reps,
            outcomes: oracle_outcomes,
            robust,
        };

        // --- irritation pass ---------------------------------------------------
        let mut result = StudyResult {
            workload: workload.name.clone(),
            annotation,
            db,
            fixed,
            governors,
            oracle: oracle_summary,
            oracle_detail,
        };
        let _irritate_span = obs.wall_span("irritate");
        for summary in result
            .fixed
            .iter_mut()
            .chain(result.governors.iter_mut())
            .chain(std::iter::once(&mut result.oracle))
        {
            for (rep_idx, rep) in summary.reps.iter_mut().enumerate() {
                if summary.outcomes.get(rep_idx).is_some_and(|o| !o.is_measured()) {
                    continue;
                }
                let model = &models[rep_idx.min(models.len() - 1)];
                rep.irritation = user_irritation(&rep.profile, model).total();
            }
        }
        Ok(result)
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::with_defaults()
    }
}

/// The empty result filling a slot that carries no measurement — an
/// abandoned, timed-out or (in a sharded sweep) skipped repetition.
/// Aggregates exclude these slots via their recorded [`RepOutcome`].
pub fn placeholder_result(name: &str) -> RepResult {
    RepResult {
        profile: LagProfile::new(name),
        dynamic_energy_mj: 0.0,
        irritation: SimDuration::ZERO,
        match_failures: 0,
        input_faults: 0,
    }
}

/// Applies per-event timing jitter of ±`jitter_us` to `trace` for
/// repetition `rep`, preserving event order and emitting *strictly
/// increasing* timestamps. Replay and the capture path assume monotone
/// time, and `VideoStream::push` rejects duplicates outright, so a pair of
/// events that the jitter (or the clamp at zero) pushes onto the same
/// microsecond would poison the run; colliding timestamps are bumped
/// forward by 1 µs instead. Repetition 0 — and a zero jitter setting —
/// replays the recording untouched.
///
/// Public because the governor-tuning sweep ([`crate::tune`]) jitters its
/// repetitions with exactly the study's rule, so tuned and studied
/// repetitions of the same `(trace, rep)` see the same input timing.
pub fn jitter_events(trace: &EventTrace, jitter_us: u64, rep: u32) -> EventTrace {
    if rep == 0 || jitter_us == 0 {
        return trace.clone();
    }
    let mut rng = SplitMix64::new(0x0e9_5eed ^ rep as u64);
    let j = jitter_us as i64;
    let mut last: Option<SimTime> = None;
    trace
        .iter()
        .map(|e| {
            let offset = rng.next_range(-j, j);
            let mut t = SimTime::from_micros((e.time.as_micros() as i64 + offset).max(0) as u64);
            if let Some(prev) = last {
                if t <= prev {
                    t = prev + SimDuration::from_micros(1);
                }
            }
            last = Some(t);
            interlag_evdev::event::TimedEvent::new(t, e.device, e.event)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::mark_up;
    use interlag_device::script::InteractionCategory;
    use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};

    /// A ~25-second workload small enough for debug-mode tests.
    fn mini_workload() -> Workload {
        let mut b = WorkloadBuilder::new(0xfee1);
        b.app_launch("launch", 400 * MCYCLES, 5, InteractionCategory::Common);
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap a", 150 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(2_000, 3_000);
        b.spurious_tap("miss");
        b.think_ms(1_500, 2_500);
        b.heavy_with_progress("save", 1_200 * MCYCLES, InteractionCategory::Complex);
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap b", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.background_burst("sync", interlag_evdev::time::SimDuration::from_secs(1), 200 * MCYCLES);
        b.build("mini", "miniature study workload")
    }

    fn tiny_lab() -> Lab {
        // Reduce the OPP sweep cost: keep the full table (the study needs
        // it) but a single repetition.
        Lab::new(LabConfig { reps: 1, ..Default::default() })
    }

    proptest::proptest! {
        /// The contract replay depends on: jittered traces keep their
        /// length and stay *strictly* increasing in time, whatever the
        /// input spacing. The old clamp-to-last produced duplicate
        /// timestamps whenever jitter pulled neighbours together.
        #[test]
        fn jitter_keeps_timestamps_strictly_increasing(
            mut times in proptest::collection::vec(0u64..5_000_000, 1..64),
            jitter_us in 1u64..10_000,
            rep in 1u32..8,
        ) {
            use interlag_evdev::event::{EventType, InputEvent, TimedEvent};
            times.sort_unstable();
            let trace: EventTrace = times
                .iter()
                .map(|&t| {
                    TimedEvent::new(
                        SimTime::from_micros(t),
                        0,
                        InputEvent::new(EventType::Syn, 0, 0),
                    )
                })
                .collect();
            let out = jitter_events(&trace, jitter_us, rep);
            proptest::prop_assert_eq!(out.iter().count(), times.len());
            let mut prev: Option<SimTime> = None;
            for e in out.iter() {
                if let Some(p) = prev {
                    proptest::prop_assert!(e.time > p, "{:?} !> {:?}", e.time, p);
                }
                prev = Some(e.time);
            }
            // Repetition 0 replays the recording untouched.
            let identity = jitter_events(&trace, jitter_us, 0);
            for (a, b) in trace.iter().zip(identity.iter()) {
                proptest::prop_assert_eq!(a.time, b.time);
            }
        }
    }

    #[test]
    fn annotation_covers_every_actual_lag() {
        let lab = tiny_lab();
        let w = mini_workload();
        let (db, stats, run) = lab.annotate_workload(&w).expect("annotate");
        assert_eq!(db.len(), run.lag_beginnings().len());
        assert_eq!(stats.unannotated, 0);
        assert!(stats.reduction_factor() > 3.0, "factor {}", stats.reduction_factor());
    }

    #[test]
    fn matcher_agrees_with_ground_truth_within_a_frame() {
        let lab = tiny_lab();
        let w = mini_workload();
        let (db, _, _) = lab.annotate_workload(&w).expect("annotate");
        // Measure a *different* configuration than the annotation
        // reference.
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = lab.run(&w, w.script.record_trace(), &mut gov).expect("clean run");
        let video = run.video.as_ref().unwrap();
        let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, "fixed-0.96");
        assert!(failures.is_empty(), "failures: {failures:?}");
        let budget = lab.config.device.frame_period + lab.config.device.quantum * 2;
        for rec in run.interactions.iter().filter(|r| !r.spurious && r.triggered) {
            let truth = rec.true_lag().expect("serviced");
            let measured = profile.lag_of(rec.id).expect("matched");
            let err = if measured > truth { measured - truth } else { truth - measured };
            assert!(err <= budget, "lag {}: measured {measured} vs truth {truth}", rec.id);
        }
    }

    #[test]
    fn study_produces_the_full_configuration_matrix() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w).expect("study");
        assert_eq!(study.fixed.len(), 14);
        assert_eq!(study.governors.len(), 3);
        assert_eq!(study.all_configs().count(), 18);
        // Every config measured every lag.
        let lags = study.db.len();
        for c in study.all_configs() {
            assert_eq!(c.reps.len(), 1);
            assert_eq!(c.reps[0].profile.len(), lags, "{}", c.name);
            assert_eq!(c.reps[0].match_failures, 0, "{}", c.name);
            assert!(c.reps[0].dynamic_energy_mj > 0.0);
        }
    }

    #[test]
    fn fastest_fixed_and_oracle_do_not_irritate() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w).expect("study");
        let fastest = study.fixed.last().unwrap();
        assert_eq!(fastest.mean_irritation(), SimDuration::ZERO);
        assert_eq!(study.oracle.mean_irritation(), SimDuration::ZERO);
        // The slowest fixed frequency irritates.
        assert!(study.fixed[0].mean_irritation() > SimDuration::ZERO);
    }

    #[test]
    fn lag_medians_shrink_with_frequency() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w).expect("study");
        let mean_of = |c: &ConfigSummary| c.reps[0].profile.mean_lag();
        let slow = mean_of(&study.fixed[0]);
        let mid = mean_of(&study.fixed[5]);
        let fast = mean_of(study.fixed.last().unwrap());
        assert!(slow > mid && mid > fast, "{slow} > {mid} > {fast}");
    }

    #[test]
    fn oracle_energy_beats_fastest_fixed() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w).expect("study");
        let fastest = study.fixed.last().unwrap();
        assert!(
            study.oracle.mean_energy_mj() < fastest.mean_energy_mj(),
            "oracle {} vs fixed-max {}",
            study.oracle.mean_energy_mj(),
            fastest.mean_energy_mj()
        );
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let w = mini_workload();
        let serial = Lab::new(LabConfig { reps: 2, workers: 1, ..Default::default() })
            .study(&w)
            .expect("study");
        let parallel = Lab::new(LabConfig { reps: 2, workers: 4, ..Default::default() })
            .study(&w)
            .expect("study");

        assert_eq!(serial.workload, parallel.workload);
        assert_eq!(serial.annotation, parallel.annotation);
        assert_eq!(serial.db, parallel.db);
        assert_eq!(serial.oracle_detail, parallel.oracle_detail);

        let mut configs = 0;
        for (s, p) in serial.all_configs().zip(parallel.all_configs()) {
            configs += 1;
            assert_eq!(s.name, p.name);
            assert_eq!(s.freq, p.freq);
            assert_eq!(s.reps.len(), p.reps.len(), "{}", s.name);
            for (sr, pr) in s.reps.iter().zip(&p.reps) {
                assert_eq!(sr.profile, pr.profile, "{}", s.name);
                // Bit-identical, not merely approximately equal.
                assert_eq!(
                    sr.dynamic_energy_mj.to_bits(),
                    pr.dynamic_energy_mj.to_bits(),
                    "{}",
                    s.name
                );
                assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
                assert_eq!(sr.match_failures, pr.match_failures, "{}", s.name);
            }
        }
        assert_eq!(configs, 18);
    }

    #[test]
    fn repetitions_vary_but_agree() {
        let lab = Lab::new(LabConfig { reps: 2, ..Default::default() });
        let mut b = WorkloadBuilder::new(0xabc);
        b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
        b.think_ms(1_500, 2_000);
        b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
        let w = b.build("mini2", "two-interaction workload");
        let study = lab.study(&w).expect("study");
        let ond = study.config("ondemand").unwrap();
        assert_eq!(ond.reps.len(), 2);
        let (a, b_) = (&ond.reps[0], &ond.reps[1]);
        // Jitter introduces some variation, but the same order of
        // magnitude.
        let ratio = a.dynamic_energy_mj / b_.dynamic_energy_mj;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
