//! The experiment laboratory: the paper's §III pipeline end to end.
//!
//! One [`Lab`] owns the simulated bench setup — device, HDMI capture,
//! calibrated power rig, suggester settings — and runs complete studies:
//!
//! 1. **Record** the workload's input trace.
//! 2. **Annotate** it once (Part A of Figure 4): reference execution at
//!    the fastest frequency, suggester + picker → annotation database.
//! 3. **Replay** under every configuration (14 fixed frequencies, the
//!    three governors, the oracle), repeating each run with small input
//!    jitter as the paper repeats runs to bound statistical error.
//! 4. **Mark up** every captured video with the matcher → lag profiles.
//! 5. **Meter** energy from the frequency/load traces, and score user
//!    irritation against 110 % of the fastest frequency's profile.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use interlag_device::device::{CaptureMode, Device, DeviceConfig, RunArtifacts};
use interlag_device::dvfs::{FixedGovernor, Governor};
use interlag_evdev::replay::ReplayAgent;
use interlag_evdev::rng::SplitMix64;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_evdev::trace::EventTrace;
use interlag_governors::plan::PlanGovernor;
use interlag_governors::{Conservative, Interactive, Ondemand};
use interlag_power::calibrate::{calibrate, CalibrationConfig, MeasuredPowerTable};
use interlag_power::energy::EnergyMeter;
use interlag_power::model::PowerModel;
use interlag_power::opp::Frequency;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_workloads::gen::Workload;

use crate::annotation::{annotate, AnnotationDb, AnnotationStats, GroundTruthPicker};
use crate::irritation::{user_irritation, ThresholdModel};
use crate::matcher::mark_up;
use crate::oracle::{build_oracle, Oracle, OracleConfig};
use crate::profile::LagProfile;
use crate::suggester::{Suggester, SuggesterConfig};

/// Laboratory configuration.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// The simulated device (capture mode is forced to HDMI for studies).
    pub device: DeviceConfig,
    /// Power-rig calibration settings.
    pub calibration: CalibrationConfig,
    /// Minimum still run required by the suggester.
    pub min_still_run: u32,
    /// Match tolerance stored into annotations.
    pub tolerance: MatchTolerance,
    /// Repetitions per configuration (the paper uses 5).
    pub reps: u32,
    /// Input-timing jitter between repetitions, microseconds.
    pub jitter_us: u64,
    /// Worker threads for the configuration×repetition sweep of
    /// [`Lab::study`]. Every run is a pure function of its (trace,
    /// governor) inputs, so any worker count produces bit-identical
    /// results; `1` forces the legacy serial sweep. Defaults to
    /// [`std::thread::available_parallelism`].
    pub workers: usize,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            device: DeviceConfig::default(),
            calibration: CalibrationConfig::default(),
            min_still_run: 1,
            tolerance: MatchTolerance::EXACT,
            reps: 1,
            jitter_us: 1_500,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
    }
}

/// One repetition's measurements for one configuration.
#[derive(Debug, Clone)]
pub struct RepResult {
    /// The measured lag profile.
    pub profile: LagProfile,
    /// Dynamic (above-idle) energy, millijoules.
    pub dynamic_energy_mj: f64,
    /// Total user irritation under the study's threshold model.
    pub irritation: SimDuration,
    /// Lags the matcher could not resolve (should be zero).
    pub match_failures: usize,
}

/// All repetitions of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigSummary {
    /// Configuration name as the paper labels it.
    pub name: String,
    /// The pinned frequency for fixed configurations.
    pub freq: Option<Frequency>,
    /// Per-repetition results.
    pub reps: Vec<RepResult>,
}

impl ConfigSummary {
    /// Mean dynamic energy across repetitions.
    pub fn mean_energy_mj(&self) -> f64 {
        if self.reps.is_empty() {
            return 0.0;
        }
        self.reps.iter().map(|r| r.dynamic_energy_mj).sum::<f64>() / self.reps.len() as f64
    }

    /// Mean irritation across repetitions.
    pub fn mean_irritation(&self) -> SimDuration {
        if self.reps.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.reps.iter().map(|r| r.irritation).sum();
        total / self.reps.len() as u64
    }

    /// Every measured lag, pooled across repetitions (Figure 11's violins
    /// pool repetitions the same way).
    pub fn pooled_lags_ms(&self) -> Vec<f64> {
        self.reps.iter().flat_map(|r| r.profile.lags_ms()).collect()
    }
}

/// A complete per-workload study: Figures 11–14 read straight out of it.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Which workload was studied.
    pub workload: String,
    /// Annotation-session statistics (Part A).
    pub annotation: AnnotationStats,
    /// The annotation database (reusable for further runs).
    pub db: AnnotationDb,
    /// Fixed-frequency configurations, slowest first.
    pub fixed: Vec<ConfigSummary>,
    /// The governors, in the paper's order: conservative, interactive,
    /// ondemand.
    pub governors: Vec<ConfigSummary>,
    /// The oracle.
    pub oracle: ConfigSummary,
    /// The oracle's plan and per-lag decisions.
    pub oracle_detail: Oracle,
}

impl StudyResult {
    /// All configurations in the paper's plotting order: fixed slowest →
    /// fastest, then conservative, interactive, ondemand, oracle.
    pub fn all_configs(&self) -> impl Iterator<Item = &ConfigSummary> {
        self.fixed.iter().chain(self.governors.iter()).chain(std::iter::once(&self.oracle))
    }

    /// A configuration by name.
    pub fn config(&self, name: &str) -> Option<&ConfigSummary> {
        self.all_configs().find(|c| c.name == name)
    }

    /// Mean energy normalised to the oracle, the y-axis of Figure 12
    /// (right) and Figure 14 (top).
    pub fn energy_normalised(&self, config: &ConfigSummary) -> f64 {
        let oracle = self.oracle.mean_energy_mj();
        if oracle == 0.0 {
            return 0.0;
        }
        config.mean_energy_mj() / oracle
    }
}

/// The simulated laboratory.
#[derive(Debug)]
pub struct Lab {
    config: LabConfig,
    device: Device,
    meter: EnergyMeter,
    suggester: Suggester,
    mask: Mask,
}

impl Lab {
    /// Sets up the lab: builds the device and calibrates the power rig
    /// with the paper's micro-benchmark procedure.
    pub fn new(mut config: LabConfig) -> Self {
        config.device.capture = CaptureMode::Hdmi;
        let measured =
            calibrate(&config.device.opps, &PowerModel::krait_like(), &config.calibration);
        let screen = config.device.screen;
        // The standard mask set: status bar (clock), cursor, spinner.
        let mask = {
            let mut m = screen.status_bar_mask();
            m.exclude(screen.cursor_rect);
            m.exclude(screen.spinner_rect);
            m
        };
        let suggester = Suggester::new(SuggesterConfig {
            mask: mask.clone(),
            tolerance: config.tolerance,
            min_still_run: config.min_still_run,
        });
        let device = Device::new(config.device.clone());
        Lab { config, device, meter: EnergyMeter::new(measured), suggester, mask }
    }

    /// The lab with default settings.
    pub fn with_defaults() -> Self {
        Lab::new(LabConfig::default())
    }

    /// The calibrated power table (the oracle's efficient frequency comes
    /// from here).
    pub fn power_table(&self) -> &MeasuredPowerTable {
        self.meter.table()
    }

    /// The energy meter, for measuring runs outside [`Lab::study`]
    /// (Figure 3 meters a single window of two runs).
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// The device in use.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Executes one run of `workload` under `governor`, replaying `trace`.
    pub fn run(
        &self,
        workload: &Workload,
        trace: EventTrace,
        governor: &mut dyn Governor,
    ) -> RunArtifacts {
        self.device.run(&workload.script, ReplayAgent::new(trace), governor, workload.run_until())
    }

    /// Part A: annotates the workload from a reference execution at the
    /// fastest fixed frequency, with the ground-truth picker playing the
    /// human. Returns the database, session statistics and the reference
    /// run itself.
    pub fn annotate_workload(
        &self,
        workload: &Workload,
    ) -> (AnnotationDb, AnnotationStats, RunArtifacts) {
        let trace = workload.script.record_trace();
        let mut reference_gov = FixedGovernor::new(self.config.device.opps.max_freq());
        let run = self.run(workload, trace, &mut reference_gov);
        let picker = GroundTruthPicker::new(&run);
        let (db, stats) = annotate(
            &run,
            &self.suggester,
            &picker,
            &self.mask,
            self.config.tolerance,
            &workload.name,
        );
        (db, stats, run)
    }

    /// Part B for one run: marks up the video and meters the energy.
    /// Irritation is filled in later once the threshold model exists.
    fn measure(&self, run: &RunArtifacts, db: &AnnotationDb, name: &str) -> RepResult {
        let video = run.video.as_ref().expect("study runs capture video");
        let (profile, failures) = mark_up(video, &run.lag_beginnings(), db, name);
        let energy = self.meter.measure(&run.activity);
        RepResult {
            profile,
            dynamic_energy_mj: energy.dynamic_mj,
            irritation: SimDuration::ZERO,
            match_failures: failures.len(),
        }
    }

    /// Jitters input timings by ±`jitter_us` (repetition `rep` > 0), the
    /// run-to-run variation a real rig sees. Event order is preserved.
    fn jittered_trace(&self, trace: &EventTrace, rep: u32) -> EventTrace {
        if rep == 0 || self.config.jitter_us == 0 {
            return trace.clone();
        }
        let mut rng = SplitMix64::new(0x0e9_5eed ^ rep as u64);
        let j = self.config.jitter_us as i64;
        let mut last = SimTime::ZERO;
        trace
            .iter()
            .map(|e| {
                let offset = rng.next_range(-j, j);
                let t = SimTime::from_micros((e.time.as_micros() as i64 + offset).max(0) as u64);
                let t = t.max(last);
                last = t;
                interlag_evdev::event::TimedEvent::new(t, e.device, e.event)
            })
            .collect()
    }

    /// Runs `count` independent jobs across the configured worker threads
    /// and returns their results in job order. Every job is a pure
    /// function of its index, so the output is identical for any worker
    /// count; with one worker (or one job) the jobs simply run inline.
    fn run_matrix<F>(&self, count: usize, job: F) -> Vec<RepResult>
    where
        F: Fn(usize) -> RepResult + Sync,
    {
        let workers = self.config.workers.max(1).min(count.max(1));
        if workers == 1 {
            return (0..count).map(job).collect();
        }
        // A shared-counter work queue: each worker claims the next
        // unclaimed job until none remain. Slots are per-job, so workers
        // never contend on a result lock while another job is running.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<RepResult>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = job(i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("work queue covered every job")
            })
            .collect()
    }

    /// Runs the full study for one workload: annotate once, then replay
    /// under every fixed frequency, every governor and the oracle, with
    /// the configured repetitions.
    ///
    /// The configuration×repetition sweep — by far the dominant cost —
    /// runs on [`LabConfig::workers`] threads. Each (configuration,
    /// repetition) run is an independent pure function of the recorded
    /// trace and the governor, so results are reassembled in the paper's
    /// deterministic order and are bit-identical to a serial sweep. The
    /// oracle runs in a second stage because its plan is built from the
    /// fixed-frequency profiles of the first.
    pub fn study(&self, workload: &Workload) -> StudyResult {
        const GOVERNOR_NAMES: [&str; 3] = ["conservative", "interactive", "ondemand"];
        let trace = workload.script.record_trace();
        let (db, annotation, reference_run) = self.annotate_workload(workload);
        let opps = self.config.device.opps.clone();
        let reps = self.config.reps.max(1);

        // --- stage 1: fixed frequencies and governors --------------------
        // Job i = configuration (i / reps), repetition (i % reps), with
        // configurations ordered as the paper plots them: fixed slowest →
        // fastest, then conservative, interactive, ondemand.
        let freqs: Vec<Frequency> = opps.frequencies().collect();
        let n_fixed = freqs.len();
        let per_rep = reps as usize;
        let results = self.run_matrix((n_fixed + GOVERNOR_NAMES.len()) * per_rep, |i| {
            let config = i / per_rep;
            let rep = (i % per_rep) as u32;
            if config < n_fixed {
                let freq = freqs[config];
                let name = format!("fixed-{freq}");
                if freq == opps.max_freq() && rep == 0 {
                    // Reuse the annotation reference run.
                    self.measure(&reference_run, &db, &name)
                } else {
                    let mut gov = FixedGovernor::new(freq);
                    let run = self.run(workload, self.jittered_trace(&trace, rep), &mut gov);
                    self.measure(&run, &db, &name)
                }
            } else {
                let which = GOVERNOR_NAMES[config - n_fixed];
                let mut conservative;
                let mut interactive;
                let mut ondemand;
                let gov: &mut dyn Governor = match which {
                    "conservative" => {
                        conservative = Conservative::default();
                        &mut conservative
                    }
                    "interactive" => {
                        interactive = Interactive::for_table(&opps);
                        &mut interactive
                    }
                    _ => {
                        ondemand = Ondemand::default();
                        &mut ondemand
                    }
                };
                let run = self.run(workload, self.jittered_trace(&trace, rep), gov);
                self.measure(&run, &db, which)
            }
        });

        // Reassemble in paper order: the job layout above is config-major,
        // so each summary takes the next `reps` results.
        let mut results = results.into_iter();
        let fixed: Vec<ConfigSummary> = freqs
            .iter()
            .map(|&freq| ConfigSummary {
                name: format!("fixed-{freq}"),
                freq: Some(freq),
                reps: results.by_ref().take(per_rep).collect(),
            })
            .collect();
        let governors: Vec<ConfigSummary> = GOVERNOR_NAMES
            .iter()
            .map(|&which| ConfigSummary {
                name: which.to_string(),
                freq: None,
                reps: results.by_ref().take(per_rep).collect(),
            })
            .collect();

        // The threshold models: 110 % of the fastest frequency's profile,
        // one per repetition — each repetition jitters the input timings,
        // so a lag must be compared against the reference measured with
        // the *same* inputs (otherwise frame-grid quantisation leaks a
        // few spurious milliseconds of irritation into the baselines).
        let models: Vec<ThresholdModel> = fixed
            .last()
            .expect("at least one OPP")
            .reps
            .iter()
            .map(|r| ThresholdModel::paper_rule(r.profile.clone()))
            .collect();

        // --- stage 2: oracle ---------------------------------------------
        // Needs stage 1: the plan is derived from the fixed rep-0 profiles.
        let fixed_profiles: BTreeMap<Frequency, LagProfile> = fixed
            .iter()
            .map(|c| (c.freq.expect("fixed configs have a frequency"), c.reps[0].profile.clone()))
            .collect();
        let oracle_cfg = OracleConfig::paper(self.power_table().most_efficient_freq());
        let oracle_detail = build_oracle(&fixed_profiles, &oracle_cfg);
        let oracle_summary = ConfigSummary {
            name: "oracle".to_string(),
            freq: None,
            reps: self.run_matrix(per_rep, |rep| {
                let mut gov = PlanGovernor::new("oracle", oracle_detail.plan.clone());
                let run = self.run(workload, self.jittered_trace(&trace, rep as u32), &mut gov);
                self.measure(&run, &db, "oracle")
            }),
        };

        // --- irritation pass ---------------------------------------------------
        let mut result = StudyResult {
            workload: workload.name.clone(),
            annotation,
            db,
            fixed,
            governors,
            oracle: oracle_summary,
            oracle_detail,
        };
        for summary in result
            .fixed
            .iter_mut()
            .chain(result.governors.iter_mut())
            .chain(std::iter::once(&mut result.oracle))
        {
            for (rep_idx, rep) in summary.reps.iter_mut().enumerate() {
                let model = &models[rep_idx.min(models.len() - 1)];
                rep.irritation = user_irritation(&rep.profile, model).total();
            }
        }
        result
    }
}

impl Default for Lab {
    fn default() -> Self {
        Lab::with_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_device::script::InteractionCategory;
    use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};

    /// A ~25-second workload small enough for debug-mode tests.
    fn mini_workload() -> Workload {
        let mut b = WorkloadBuilder::new(0xfee1);
        b.app_launch("launch", 400 * MCYCLES, 5, InteractionCategory::Common);
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap a", 150 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.think_ms(2_000, 3_000);
        b.spurious_tap("miss");
        b.think_ms(1_500, 2_500);
        b.heavy_with_progress("save", 1_200 * MCYCLES, InteractionCategory::Complex);
        b.think_ms(2_000, 3_000);
        b.quick_tap("tap b", 120 * MCYCLES, InteractionCategory::SimpleFrequent);
        b.background_burst("sync", interlag_evdev::time::SimDuration::from_secs(1), 200 * MCYCLES);
        b.build("mini", "miniature study workload")
    }

    fn tiny_lab() -> Lab {
        // Reduce the OPP sweep cost: keep the full table (the study needs
        // it) but a single repetition.
        Lab::new(LabConfig { reps: 1, ..Default::default() })
    }

    #[test]
    fn annotation_covers_every_actual_lag() {
        let lab = tiny_lab();
        let w = mini_workload();
        let (db, stats, run) = lab.annotate_workload(&w);
        assert_eq!(db.len(), run.lag_beginnings().len());
        assert_eq!(stats.unannotated, 0);
        assert!(stats.reduction_factor() > 3.0, "factor {}", stats.reduction_factor());
    }

    #[test]
    fn matcher_agrees_with_ground_truth_within_a_frame() {
        let lab = tiny_lab();
        let w = mini_workload();
        let (db, _, _) = lab.annotate_workload(&w);
        // Measure a *different* configuration than the annotation
        // reference.
        let mut gov = FixedGovernor::new(Frequency::from_mhz(960));
        let run = lab.run(&w, w.script.record_trace(), &mut gov);
        let video = run.video.as_ref().unwrap();
        let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, "fixed-0.96");
        assert!(failures.is_empty(), "failures: {failures:?}");
        let budget = lab.config.device.frame_period + lab.config.device.quantum * 2;
        for rec in run.interactions.iter().filter(|r| !r.spurious && r.triggered) {
            let truth = rec.true_lag().expect("serviced");
            let measured = profile.lag_of(rec.id).expect("matched");
            let err = if measured > truth { measured - truth } else { truth - measured };
            assert!(err <= budget, "lag {}: measured {measured} vs truth {truth}", rec.id);
        }
    }

    #[test]
    fn study_produces_the_full_configuration_matrix() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w);
        assert_eq!(study.fixed.len(), 14);
        assert_eq!(study.governors.len(), 3);
        assert_eq!(study.all_configs().count(), 18);
        // Every config measured every lag.
        let lags = study.db.len();
        for c in study.all_configs() {
            assert_eq!(c.reps.len(), 1);
            assert_eq!(c.reps[0].profile.len(), lags, "{}", c.name);
            assert_eq!(c.reps[0].match_failures, 0, "{}", c.name);
            assert!(c.reps[0].dynamic_energy_mj > 0.0);
        }
    }

    #[test]
    fn fastest_fixed_and_oracle_do_not_irritate() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w);
        let fastest = study.fixed.last().unwrap();
        assert_eq!(fastest.mean_irritation(), SimDuration::ZERO);
        assert_eq!(study.oracle.mean_irritation(), SimDuration::ZERO);
        // The slowest fixed frequency irritates.
        assert!(study.fixed[0].mean_irritation() > SimDuration::ZERO);
    }

    #[test]
    fn lag_medians_shrink_with_frequency() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w);
        let mean_of = |c: &ConfigSummary| c.reps[0].profile.mean_lag();
        let slow = mean_of(&study.fixed[0]);
        let mid = mean_of(&study.fixed[5]);
        let fast = mean_of(study.fixed.last().unwrap());
        assert!(slow > mid && mid > fast, "{slow} > {mid} > {fast}");
    }

    #[test]
    fn oracle_energy_beats_fastest_fixed() {
        let lab = tiny_lab();
        let w = mini_workload();
        let study = lab.study(&w);
        let fastest = study.fixed.last().unwrap();
        assert!(
            study.oracle.mean_energy_mj() < fastest.mean_energy_mj(),
            "oracle {} vs fixed-max {}",
            study.oracle.mean_energy_mj(),
            fastest.mean_energy_mj()
        );
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let w = mini_workload();
        let serial = Lab::new(LabConfig { reps: 2, workers: 1, ..Default::default() }).study(&w);
        let parallel = Lab::new(LabConfig { reps: 2, workers: 4, ..Default::default() }).study(&w);

        assert_eq!(serial.workload, parallel.workload);
        assert_eq!(serial.annotation, parallel.annotation);
        assert_eq!(serial.db, parallel.db);
        assert_eq!(serial.oracle_detail, parallel.oracle_detail);

        let mut configs = 0;
        for (s, p) in serial.all_configs().zip(parallel.all_configs()) {
            configs += 1;
            assert_eq!(s.name, p.name);
            assert_eq!(s.freq, p.freq);
            assert_eq!(s.reps.len(), p.reps.len(), "{}", s.name);
            for (sr, pr) in s.reps.iter().zip(&p.reps) {
                assert_eq!(sr.profile, pr.profile, "{}", s.name);
                // Bit-identical, not merely approximately equal.
                assert_eq!(
                    sr.dynamic_energy_mj.to_bits(),
                    pr.dynamic_energy_mj.to_bits(),
                    "{}",
                    s.name
                );
                assert_eq!(sr.irritation, pr.irritation, "{}", s.name);
                assert_eq!(sr.match_failures, pr.match_failures, "{}", s.name);
            }
        }
        assert_eq!(configs, 18);
    }

    #[test]
    fn repetitions_vary_but_agree() {
        let lab = Lab::new(LabConfig { reps: 2, ..Default::default() });
        let mut b = WorkloadBuilder::new(0xabc);
        b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
        b.think_ms(1_500, 2_000);
        b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
        let w = b.build("mini2", "two-interaction workload");
        let study = lab.study(&w);
        let ond = study.config("ondemand").unwrap();
        assert_eq!(ond.reps.len(), 2);
        let (a, b_) = (&ond.reps[0], &ond.reps[1]);
        // Jitter introduces some variation, but the same order of
        // magnitude.
        let ratio = a.dynamic_energy_mj / b_.dynamic_energy_mj;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }
}
