//! Statistics for the evaluation figures.
//!
//! Figure 11 shows violin plots (box + kernel density) of lag durations;
//! Figure 14 averages across repetitions. This module provides the
//! five-number summaries, mean/stddev, and a small Gaussian kernel
//! density estimator, so the bench harnesses can print exactly the series
//! the paper plots.

use serde::{Deserialize, Serialize};

/// Five-number summary plus mean, as used by box/violin plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Smallest observation.
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl FiveNumber {
    /// The interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// The box-plot whisker positions at 1.5 × IQR (clamped to the data
    /// range), as drawn in Figure 11.
    pub fn whiskers(&self) -> (f64, f64) {
        let lo = (self.q1 - 1.5 * self.iqr()).max(self.min);
        let hi = (self.q3 + 1.5 * self.iqr()).min(self.max);
        (lo, hi)
    }
}

/// The NaN-free subset of `values`. A faulted measurement (say, a power
/// sample perturbed into `0.0 / 0.0`) must degrade one statistic, not
/// panic the whole study: every public function here drops NaNs through
/// this filter before sorting. Infinities order fine and pass through.
fn without_nans(values: &[f64]) -> Vec<f64> {
    values.iter().copied().filter(|v| !v.is_nan()).collect()
}

/// Computes the five-number summary of `values`.
///
/// Quartiles use linear interpolation between order statistics (type-7,
/// the numpy default the paper's plots were made with).
///
/// NaN values are ignored; returns `None` for an empty slice or when
/// every value is NaN.
pub fn five_number(values: &[f64]) -> Option<FiveNumber> {
    let mut v = without_nans(values);
    if v.is_empty() {
        return None;
    }
    v.sort_by(f64::total_cmp);
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    Some(FiveNumber {
        min: v[0],
        q1: percentile_sorted(&v, 25.0),
        median: percentile_sorted(&v, 50.0),
        q3: percentile_sorted(&v, 75.0),
        max: v[v.len() - 1],
        mean,
    })
}

/// Type-7 percentile of an already sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Sample mean and standard deviation (n − 1 denominator); stddev is zero
/// for fewer than two samples.
pub fn mean_stddev(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    (mean, var.sqrt())
}

/// A Gaussian kernel density estimate evaluated on a regular grid — the
/// curve of Figure 11's kernel plot.
///
/// Bandwidth follows Scott's rule (`σ · n^(−1/5)`), with a floor to stay
/// finite for near-constant data. Returns `(grid, density)` pairs.
pub fn kernel_density(values: &[f64], grid_points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || grid_points == 0 {
        return Vec::new();
    }
    let (mean, sd) = mean_stddev(values);
    let bandwidth = (sd * (values.len() as f64).powf(-0.2)).max(mean.abs() * 1e-3).max(1e-9);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * bandwidth;
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 3.0 * bandwidth;
    let step = if grid_points > 1 { (max - min) / (grid_points - 1) as f64 } else { 0.0 };
    let norm = 1.0 / (values.len() as f64 * bandwidth * (2.0 * std::f64::consts::PI).sqrt());
    (0..grid_points)
        .map(|i| {
            let x = min + step * i as f64;
            let d: f64 = values
                .iter()
                .map(|v| {
                    let z = (x - v) / bandwidth;
                    (-0.5 * z * z).exp()
                })
                .sum();
            (x, d * norm)
        })
        .collect()
}

/// Median of `values`, ignoring NaNs; `None` for an empty slice (or one
/// that is entirely NaN). Even-length slices average the two central
/// order statistics.
pub fn median(values: &[f64]) -> Option<f64> {
    let mut sorted = without_nans(values);
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    Some(median_sorted(&sorted))
}

/// Median absolute deviation from the median, ignoring NaNs; `None` for
/// an empty (or all-NaN) slice. Zero for a single element or
/// all-identical data.
pub fn mad(values: &[f64]) -> Option<f64> {
    let m = median(values)?;
    let mut deviations: Vec<f64> =
        values.iter().filter(|v| !v.is_nan()).map(|v| (v - m).abs()).collect();
    deviations.sort_by(f64::total_cmp);
    Some(median_sorted(&deviations))
}

fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Mean with median/MAD outlier rejection (modified z-score, the
/// Iglewicz–Hoaglin 3.5 cut): values whose `0.6745·|v − median| / MAD`
/// exceeds 3.5 are dropped before averaging. With fewer than three
/// samples — or when rejection would discard everything — it falls back
/// to the plain mean, and an empty slice yields `0.0`, so the result is
/// always finite (never NaN) for finite input.
///
/// Study summaries under fault injection use this so one abandoned or
/// wildly perturbed repetition cannot drag a configuration's mean. NaN
/// values are dropped up front — a single poisoned sample rejects itself
/// rather than poisoning the mean.
pub fn robust_mean(values: &[f64]) -> f64 {
    let values = without_nans(values);
    let values = values.as_slice();
    if values.is_empty() {
        return 0.0;
    }
    let plain = values.iter().sum::<f64>() / values.len() as f64;
    if values.len() <= 2 {
        return plain;
    }
    let m = median(values).expect("non-empty");
    let mad = mad(values).expect("non-empty");
    let kept: Vec<f64> = if mad == 0.0 {
        // All deviations tie at zero spread: keep the consensus values.
        values.iter().copied().filter(|v| *v == m).collect()
    } else {
        values.iter().copied().filter(|v| 0.6745 * (v - m).abs() / mad <= 3.5).collect()
    };
    if kept.is_empty() {
        plain
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// Geometric mean; zero if any value is non-positive or the slice is
/// empty. Used for cross-dataset energy summaries.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_values_are_filtered_not_fatal() {
        let nan = f64::NAN;
        // Each of these used to panic inside the sort comparator.
        assert_eq!(median(&[1.0, nan, 3.0]), Some(2.0));
        assert_eq!(median(&[nan]), None);
        assert_eq!(mad(&[1.0, nan, 2.0, 3.0, nan]), Some(1.0));
        assert!(mad(&[nan, nan]).is_none());

        let f = five_number(&[nan, 5.0, 1.0, nan, 3.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.mean, 3.0);
        assert!(five_number(&[nan, nan]).is_none());

        let m = robust_mean(&[10.0, nan, 10.2, 9.8, nan]);
        assert!((m - 10.0).abs() < 0.2);
        assert_eq!(robust_mean(&[nan]), 0.0);
    }

    #[test]
    fn five_number_of_known_data() {
        let f = five_number(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
        assert_eq!(f.mean, 3.0);
        assert_eq!(f.iqr(), 2.0);
    }

    #[test]
    fn five_number_interpolates() {
        let f = five_number(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((f.q1 - 1.75).abs() < 1e-12);
        assert!((f.median - 2.5).abs() < 1e-12);
        assert!((f.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn whiskers_clamp_to_data() {
        let f = five_number(&[1.0, 2.0, 3.0, 4.0, 100.0]).unwrap();
        let (lo, hi) = f.whiskers();
        assert_eq!(lo, 1.0);
        assert!(hi < 100.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(five_number(&[]).is_none());
        let f = five_number(&[7.0]).unwrap();
        assert_eq!(f.median, 7.0);
        assert_eq!(f.q1, 7.0);
        assert_eq!(mean_stddev(&[7.0]), (7.0, 0.0));
        assert_eq!(mean_stddev(&[]), (0.0, 0.0));
    }

    #[test]
    fn stddev_matches_hand_computation() {
        let (m, s) = mean_stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn kde_integrates_to_one_ish() {
        let values = [100.0, 120.0, 130.0, 500.0, 520.0];
        let curve = kernel_density(&values, 512);
        let step = curve[1].0 - curve[0].0;
        let integral: f64 = curve.iter().map(|(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
        // Density peaks near the data cluster, not in the gap.
        let near_cluster = curve.iter().find(|(x, _)| *x >= 120.0).unwrap().1;
        let in_gap = curve.iter().find(|(x, _)| *x >= 300.0).unwrap().1;
        assert!(near_cluster > in_gap);
    }

    #[test]
    fn kde_handles_constant_data() {
        let curve = kernel_density(&[5.0; 10], 64);
        assert_eq!(curve.len(), 64);
        assert!(curve.iter().all(|(_, d)| d.is_finite()));
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn median_edge_cases() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
        // Even length averages the two central order statistics,
        // regardless of input order.
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[5.0, 5.0, 5.0, 5.0]), Some(5.0));
        assert_eq!(median(&[1.0, 2.0, 3.0]), Some(2.0));
    }

    #[test]
    fn mad_edge_cases() {
        assert_eq!(mad(&[]), None);
        assert_eq!(mad(&[7.0]), Some(0.0));
        assert_eq!(mad(&[5.0, 5.0, 5.0]), Some(0.0));
        // {1,2,3,4}: median 2.5, deviations {1.5,0.5,0.5,1.5}, MAD 1.0.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0]), Some(1.0));
    }

    #[test]
    fn robust_mean_rejects_the_outlier() {
        // Tight cluster plus one wild value: the modified z-score cut
        // drops it and the mean stays at the cluster.
        let m = robust_mean(&[10.0, 10.1, 9.9, 10.0, 500.0]);
        assert!((m - 10.0).abs() < 0.1, "robust mean {m}");
        // Plain mean would be ~108.
    }

    #[test]
    fn robust_mean_small_and_identical_inputs() {
        assert_eq!(robust_mean(&[]), 0.0);
        assert_eq!(robust_mean(&[3.0]), 3.0);
        // Two samples cannot vote an outlier out: plain mean.
        assert_eq!(robust_mean(&[1.0, 9.0]), 5.0);
        // All-identical data has MAD zero; consensus is the value itself.
        assert_eq!(robust_mean(&[4.0; 6]), 4.0);
        // Majority-identical with stragglers: MAD zero keeps the consensus.
        assert_eq!(robust_mean(&[4.0, 4.0, 4.0, 4.0, 100.0]), 4.0);
    }

    #[test]
    fn robust_mean_never_yields_nan() {
        let cases: [&[f64]; 6] = [
            &[],
            &[0.0],
            &[0.0, 0.0],
            &[1.0, 2.0],
            &[1.0, 1.0, 1.0, 1e9],
            &[-5.0, 5.0, 0.0, 1e-12],
        ];
        for values in cases {
            let m = robust_mean(values);
            assert!(m.is_finite(), "robust_mean({values:?}) = {m}");
        }
    }
}
