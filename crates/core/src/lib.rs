//! # interlag-core — measuring QoE of interactive workloads
//!
//! The primary contribution of *Seeker, Petoumenos, Leather & Franke:
//! "Measuring QoE of Interactive Workloads and Characterising Frequency
//! Governors on Mobile Devices" (IISWC 2014)*, reproduced as a library:
//!
//! * [`suggester`] — semi-automatic lag-ending discovery over captured
//!   video (§II-D, Figure 7);
//! * [`annotation`] — the once-per-workload image database of expected
//!   lag endings (Part A of Figure 4);
//! * [`matcher`] — fully automatic markup of any further execution
//!   (§II-E, Part B of Figure 4);
//! * [`profile`] — interaction-lag profiles;
//! * [`irritation`] — the user-irritation metric (§II-F, Figure 9);
//! * [`jank`] — dropped-frame analysis of animation windows (the §VI
//!   future work, implemented);
//! * [`oracle`] — composing the optimal frequency trace from
//!   fixed-frequency runs (§III-B);
//! * [`experiment`] — the whole §III pipeline: record → annotate →
//!   replay × 18 configurations → mark up → meter energy → score
//!   irritation;
//! * [`report`] — CSV/Markdown exporters for study results;
//! * [`stats`] — quartiles, KDE and summaries for the evaluation figures;
//! * [`error`] — typed pipeline failures driving the self-healing study
//!   loop (retry budget + tolerance escalation under fault injection);
//! * [`ingest`] — hardened dataset loaders (strict vs salvage policies
//!   over traces, annotation databases and video manifests);
//! * [`checkpoint`] — the durable write-ahead study journal behind
//!   crash-safe, resumable sweeps;
//! * [`propgroup`] — the `key=val:key=val,val2` property-group CLI
//!   grammar shared by `interlag sweep` matrices and `interlag db`
//!   queries;
//! * [`tune`] — governor-tunable grids over that grammar, scored by
//!   (irritation, energy) distance from the per-workload oracle.
//!
//! # Examples
//!
//! Run a miniature end-to-end study:
//!
//! ```
//! use interlag_core::experiment::{Lab, LabConfig};
//! use interlag_device::script::InteractionCategory;
//! use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};
//!
//! let mut b = WorkloadBuilder::new(7);
//! b.app_launch("open app", 300 * MCYCLES, 4, InteractionCategory::Common);
//! b.think_ms(1_500, 2_500);
//! b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
//! let workload = b.build("demo", "doc-test workload");
//!
//! let lab = Lab::new(LabConfig::default());
//! let study = lab.study(&workload).expect("fault-free studies cannot fail");
//! assert_eq!(study.all_configs().count(), 18); // 14 fixed + 3 governors + oracle
//! let ondemand = study.config("ondemand").unwrap();
//! assert!(study.energy_normalised(ondemand) > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod annotation;
pub mod checkpoint;
pub mod error;
pub mod experiment;
pub mod ingest;
pub mod irritation;
pub mod jank;
pub mod matcher;
pub mod oracle;
pub mod profile;
pub mod propgroup;
pub mod report;
pub mod stats;
pub mod suggester;
pub mod tune;
pub mod wire;

pub use annotation::{annotate, AnnotationDb, AnnotationStats, FramePicker, GroundTruthPicker};
pub use checkpoint::{study_fingerprint, CheckpointFormat, CheckpointRecord, StudyJournal};
pub use error::InterlagError;
pub use experiment::{
    ConfigSummary, Lab, LabConfig, RepOutcome, RepResult, StudyOptions, StudyResult, WatchdogConfig,
};
pub use ingest::{DatasetError, IngestMode, IngestReport};
pub use irritation::{user_irritation, IrritationReport, ThresholdModel};
pub use jank::{measure_jank, JankReport};
pub use matcher::{mark_up, mark_up_with_policy, MatchFailure, MatchPolicy, MatchedLag, Matcher};
pub use oracle::{build_oracle, Oracle, OracleConfig, OracleDecision};
pub use profile::{LagEntry, LagProfile};
pub use propgroup::{PropError, PropErrorKind, PropGroup, PropPoint};
pub use report::{oracle_csv, profile_csv, study_csv, study_markdown};
pub use suggester::{Suggester, SuggesterConfig, Suggestion};
pub use tune::{
    measure_tune_point, parse_tune_group, tune_reference, GovernorSpec, TuneGrid, TuneMeasurement,
    TuneReference,
};
