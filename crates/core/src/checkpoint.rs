//! Durable study checkpoints: the codec between study repetitions and the
//! write-ahead journal, plus the [`StudyJournal`] the sweep records into.
//!
//! Every completed `(configuration, repetition)` of a journalled study is
//! appended to an fsync'd, checksummed journal (`interlag-journal`'s
//! framing) before the sweep moves on. A study resumed from that journal
//! replays the recorded repetitions instead of re-running them and
//! re-dispatches only the remainder — and because every repetition is a
//! pure function of its inputs, the resumed study's reports are
//! byte-identical to an uninterrupted run at any worker count.
//!
//! The payload codec is deliberately exact: every `f64` travels as its
//! IEEE bit pattern (`to_bits`), every simulated time as integer
//! microseconds, so a value that crossed the journal is *the same value*,
//! not a close decimal. Records carry a fingerprint of the dataset trace
//! and the lab configuration; resuming against a different dataset or a
//! reconfigured lab ignores the stale records rather than splicing
//! foreign measurements into the study.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use interlag_device::DeviceError;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::{decode_records, Journal};
use interlag_video::stream::VideoError;

use crate::error::{InterlagError, ShardFailure};
use crate::experiment::{LabConfig, RepOutcome, RepResult};
use crate::ingest::DatasetError;
use crate::matcher::MatchFailure;
use crate::profile::{LagEntry, LagProfile};
use crate::wire::{R, W};

/// Version stamp carried by every checkpoint record; decoding rejects
/// records from other versions (they are treated like fingerprint
/// mismatches: ignored, re-run).
pub const CHECKPOINT_VERSION: u32 = 1;

/// One journalled repetition: coordinates, fingerprint, outcome and the
/// full measurement, in exact (bit-preserving) representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Codec version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// [`study_fingerprint`] of the dataset and lab configuration this
    /// repetition belongs to.
    pub fingerprint: u64,
    /// Configuration index in the sweep's job layout (fixed frequencies
    /// slowest-first, then the governors, then the oracle).
    pub config: usize,
    /// Repetition number within the configuration.
    pub rep: u32,
    outcome: OutcomeRepr,
    result: ResultRepr,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LagEntryRepr {
    id: usize,
    input_us: u64,
    lag_us: u64,
    threshold_us: u64,
    confidence_bits: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ResultRepr {
    config_name: String,
    entries: Vec<LagEntryRepr>,
    energy_bits: u64,
    irritation_us: u64,
    match_failures: usize,
    input_faults: usize,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum OutcomeRepr {
    Ok,
    Retried { attempts: u32 },
    TimedOut { attempts: u32 },
    Abandoned { attempts: u32, cause: CauseRepr },
    // Skipped slots belong to another shard and are never journalled by
    // the study loop itself, but the codec stays total: a record holding
    // one round-trips instead of poisoning the journal.
    Skipped,
}

/// Exact mirror of [`InterlagError`] for the journal. The device error is
/// flattened (its variants are mirrored here) so the codec does not
/// depend on foreign types growing serde support.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum CauseRepr {
    DeviceNonMonotonic { prev_us: u64, time_us: u64 },
    DeviceCancelled,
    Match { interaction_id: usize, failure: MatchFailure },
    MissingVideo,
    Timeout,
    Dataset(DatasetError),
    Shard { failure: ShardFailure },
}

impl From<&InterlagError> for CauseRepr {
    fn from(e: &InterlagError) -> Self {
        match e {
            InterlagError::Device(DeviceError::Video(VideoError::NonMonotonicTimestamp {
                prev,
                time,
            })) => CauseRepr::DeviceNonMonotonic {
                prev_us: prev.as_micros(),
                time_us: time.as_micros(),
            },
            InterlagError::Device(DeviceError::Cancelled) => CauseRepr::DeviceCancelled,
            InterlagError::Match { interaction_id, failure } => {
                CauseRepr::Match { interaction_id: *interaction_id, failure: *failure }
            }
            InterlagError::MissingVideo => CauseRepr::MissingVideo,
            InterlagError::Timeout => CauseRepr::Timeout,
            InterlagError::Dataset(d) => CauseRepr::Dataset(d.clone()),
            InterlagError::Shard { failure } => CauseRepr::Shard { failure: *failure },
        }
    }
}

impl From<CauseRepr> for InterlagError {
    fn from(c: CauseRepr) -> Self {
        match c {
            CauseRepr::DeviceNonMonotonic { prev_us, time_us } => {
                InterlagError::Device(DeviceError::Video(VideoError::NonMonotonicTimestamp {
                    prev: SimTime::from_micros(prev_us),
                    time: SimTime::from_micros(time_us),
                }))
            }
            CauseRepr::DeviceCancelled => InterlagError::Device(DeviceError::Cancelled),
            CauseRepr::Match { interaction_id, failure } => {
                InterlagError::Match { interaction_id, failure }
            }
            CauseRepr::MissingVideo => InterlagError::MissingVideo,
            CauseRepr::Timeout => InterlagError::Timeout,
            CauseRepr::Dataset(d) => InterlagError::Dataset(d),
            CauseRepr::Shard { failure } => InterlagError::Shard { failure },
        }
    }
}

fn result_repr(result: &RepResult) -> ResultRepr {
    ResultRepr {
        config_name: result.profile.config.clone(),
        entries: result
            .profile
            .entries()
            .iter()
            .map(|e| LagEntryRepr {
                id: e.interaction_id,
                input_us: e.input_time.as_micros(),
                lag_us: e.lag.as_micros(),
                threshold_us: e.threshold.as_micros(),
                confidence_bits: e.confidence.to_bits(),
            })
            .collect(),
        energy_bits: result.dynamic_energy_mj.to_bits(),
        irritation_us: result.irritation.as_micros(),
        match_failures: result.match_failures,
        input_faults: result.input_faults,
    }
}

fn result_from_repr(repr: ResultRepr) -> RepResult {
    let mut profile = LagProfile::new(repr.config_name);
    for e in repr.entries {
        profile.push(LagEntry {
            interaction_id: e.id,
            input_time: SimTime::from_micros(e.input_us),
            lag: SimDuration::from_micros(e.lag_us),
            threshold: SimDuration::from_micros(e.threshold_us),
            confidence: f64::from_bits(e.confidence_bits),
        });
    }
    RepResult {
        profile,
        dynamic_energy_mj: f64::from_bits(repr.energy_bits),
        irritation: SimDuration::from_micros(repr.irritation_us),
        match_failures: repr.match_failures,
        input_faults: repr.input_faults,
    }
}

fn outcome_repr(outcome: &RepOutcome) -> OutcomeRepr {
    match outcome {
        RepOutcome::Ok => OutcomeRepr::Ok,
        RepOutcome::Retried { attempts } => OutcomeRepr::Retried { attempts: *attempts },
        RepOutcome::TimedOut { attempts } => OutcomeRepr::TimedOut { attempts: *attempts },
        RepOutcome::Abandoned { attempts, cause } => {
            OutcomeRepr::Abandoned { attempts: *attempts, cause: cause.into() }
        }
        RepOutcome::Skipped => OutcomeRepr::Skipped,
    }
}

fn outcome_from_repr(repr: OutcomeRepr) -> RepOutcome {
    match repr {
        OutcomeRepr::Ok => RepOutcome::Ok,
        OutcomeRepr::Retried { attempts } => RepOutcome::Retried { attempts },
        OutcomeRepr::TimedOut { attempts } => RepOutcome::TimedOut { attempts },
        OutcomeRepr::Abandoned { attempts, cause } => {
            RepOutcome::Abandoned { attempts, cause: cause.into() }
        }
        OutcomeRepr::Skipped => RepOutcome::Skipped,
    }
}

impl CheckpointRecord {
    /// Builds the record for one completed repetition.
    pub fn new(
        fingerprint: u64,
        config: usize,
        rep: u32,
        result: &RepResult,
        outcome: &RepOutcome,
    ) -> Self {
        CheckpointRecord {
            version: CHECKPOINT_VERSION,
            fingerprint,
            config,
            rep,
            outcome: outcome_repr(outcome),
            result: result_repr(result),
        }
    }

    /// Unpacks the record back into the study's own types.
    pub fn into_parts(self) -> (usize, u32, RepResult, RepOutcome) {
        (self.config, self.rep, result_from_repr(self.result), outcome_from_repr(self.outcome))
    }
}

/// Serialises a checkpoint to journal-payload bytes (JSON, one line).
pub fn encode_checkpoint(record: &CheckpointRecord) -> Vec<u8> {
    serde_json::to_string(record).expect("checkpoint records always serialise").into_bytes()
}

/// Parses journal-payload bytes back into a checkpoint. `None` for
/// payloads that are not valid UTF-8, not valid JSON for the schema, or
/// stamped with a different [`CHECKPOINT_VERSION`] — the caller treats
/// all three as "not a usable checkpoint", never as corruption worth
/// aborting over.
pub fn decode_checkpoint(payload: &[u8]) -> Option<CheckpointRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let record: CheckpointRecord = serde_json::from_str(text).ok()?;
    (record.version == CHECKPOINT_VERSION).then_some(record)
}

/// Magic prefix of binary checkpoint payloads. JSON payloads start with
/// `{`, so the first byte alone discriminates the two codecs.
pub const CHECKPOINT_BINARY_MAGIC: &[u8; 4] = b"ILC1";

/// Serialises a checkpoint to the compact binary payload: fixed-width
/// little-endian fields, `f64`s as IEEE bit patterns, enums as one-byte
/// tags. Carries exactly the same information as [`encode_checkpoint`]
/// at roughly a third the size and without any float formatting/parsing
/// on the hot resume path.
pub fn encode_checkpoint_binary(record: &CheckpointRecord) -> Vec<u8> {
    let mut w = W::new();
    w.raw(CHECKPOINT_BINARY_MAGIC);
    w.u32(record.version);
    w.u64(record.fingerprint);
    w.usize(record.config);
    w.u32(record.rep);
    match &record.outcome {
        OutcomeRepr::Ok => w.u8(0),
        OutcomeRepr::Retried { attempts } => {
            w.u8(1);
            w.u32(*attempts);
        }
        OutcomeRepr::TimedOut { attempts } => {
            w.u8(2);
            w.u32(*attempts);
        }
        OutcomeRepr::Abandoned { attempts, cause } => {
            w.u8(3);
            w.u32(*attempts);
            encode_cause(&mut w, cause);
        }
        OutcomeRepr::Skipped => w.u8(4),
    }
    let result = &record.result;
    w.str(&result.config_name);
    w.u32(result.entries.len() as u32);
    for e in &result.entries {
        w.usize(e.id);
        w.u64(e.input_us);
        w.u64(e.lag_us);
        w.u64(e.threshold_us);
        w.u64(e.confidence_bits);
    }
    w.u64(result.energy_bits);
    w.u64(result.irritation_us);
    w.usize(result.match_failures);
    w.usize(result.input_faults);
    w.into_bytes()
}

fn encode_cause(w: &mut W, cause: &CauseRepr) {
    match cause {
        CauseRepr::DeviceNonMonotonic { prev_us, time_us } => {
            w.u8(0);
            w.u64(*prev_us);
            w.u64(*time_us);
        }
        CauseRepr::DeviceCancelled => w.u8(1),
        CauseRepr::Match { interaction_id, failure } => {
            w.u8(2);
            w.usize(*interaction_id);
            w.u8(match failure {
                MatchFailure::NotAnnotated => 0,
                MatchFailure::EndingNotFound => 1,
                MatchFailure::Cancelled => 2,
            });
        }
        CauseRepr::MissingVideo => w.u8(3),
        CauseRepr::Timeout => w.u8(4),
        // Dataset errors are cold (they abandon the whole study) and
        // structurally rich; shipping them as embedded JSON keeps the
        // binary codec free of their churn.
        CauseRepr::Dataset(d) => {
            w.u8(5);
            w.str(&serde_json::to_string(d).expect("dataset errors serialise"));
        }
        CauseRepr::Shard { failure } => {
            w.u8(6);
            w.u8(match failure {
                ShardFailure::Crashed => 0,
                ShardFailure::Wedged => 1,
                ShardFailure::Corrupt => 2,
            });
        }
    }
}

/// Parses a compact binary checkpoint payload; `None` on wrong magic,
/// version, truncation, trailing garbage or any malformed field —
/// mirrors [`decode_checkpoint`]'s "not usable, not fatal" contract.
pub fn decode_checkpoint_binary(payload: &[u8]) -> Option<CheckpointRecord> {
    let mut r = R::new(payload);
    if r.raw(4)? != CHECKPOINT_BINARY_MAGIC {
        return None;
    }
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return None;
    }
    let fingerprint = r.u64()?;
    let config = r.usize()?;
    let rep = r.u32()?;
    let outcome = match r.u8()? {
        0 => OutcomeRepr::Ok,
        1 => OutcomeRepr::Retried { attempts: r.u32()? },
        2 => OutcomeRepr::TimedOut { attempts: r.u32()? },
        3 => OutcomeRepr::Abandoned { attempts: r.u32()?, cause: decode_cause(&mut r)? },
        4 => OutcomeRepr::Skipped,
        _ => return None,
    };
    let config_name = r.str()?;
    let count = r.u32()? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        entries.push(LagEntryRepr {
            id: r.usize()?,
            input_us: r.u64()?,
            lag_us: r.u64()?,
            threshold_us: r.u64()?,
            confidence_bits: r.u64()?,
        });
    }
    let result = ResultRepr {
        config_name,
        entries,
        energy_bits: r.u64()?,
        irritation_us: r.u64()?,
        match_failures: r.usize()?,
        input_faults: r.usize()?,
    };
    r.at_end().then_some(CheckpointRecord { version, fingerprint, config, rep, outcome, result })
}

fn decode_cause(r: &mut R<'_>) -> Option<CauseRepr> {
    Some(match r.u8()? {
        0 => CauseRepr::DeviceNonMonotonic { prev_us: r.u64()?, time_us: r.u64()? },
        1 => CauseRepr::DeviceCancelled,
        2 => CauseRepr::Match {
            interaction_id: r.usize()?,
            failure: match r.u8()? {
                0 => MatchFailure::NotAnnotated,
                1 => MatchFailure::EndingNotFound,
                2 => MatchFailure::Cancelled,
                _ => return None,
            },
        },
        3 => CauseRepr::MissingVideo,
        4 => CauseRepr::Timeout,
        5 => CauseRepr::Dataset(serde_json::from_str(&r.str()?).ok()?),
        6 => CauseRepr::Shard {
            failure: match r.u8()? {
                0 => ShardFailure::Crashed,
                1 => ShardFailure::Wedged,
                2 => ShardFailure::Corrupt,
                _ => return None,
            },
        },
        _ => return None,
    })
}

/// Parses a checkpoint payload in either codec, telling them apart by
/// their first bytes (JSON starts `{`, binary starts [`CHECKPOINT_BINARY_MAGIC`]).
/// Resume paths use this so a study journal written in one format can be
/// continued in the other.
pub fn decode_checkpoint_any(payload: &[u8]) -> Option<CheckpointRecord> {
    if payload.starts_with(CHECKPOINT_BINARY_MAGIC) {
        decode_checkpoint_binary(payload)
    } else {
        decode_checkpoint(payload)
    }
}

/// FNV-1a (64-bit) over the dataset's `getevent` text and the
/// result-affecting lab settings.
///
/// Worker count and observability are deliberately excluded: both are
/// guaranteed not to change study results, and resuming a sweep on a
/// machine with a different core count must reuse the journal.
pub fn study_fingerprint(trace_text: &str, config: &LabConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(trace_text.as_bytes());
    eat(config_signature(config).as_bytes());
    hash
}

/// The stable textual digest of every [`LabConfig`] field that can change
/// study results. `workers` and `obs` are excluded by construction.
fn config_signature(config: &LabConfig) -> String {
    let d = &config.device;
    format!(
        "sig-v1|screen={:?}|opps={:?}|quantum={:?}|frame_period={:?}|capture={:?}\
         |input_cost={}|ui_render={}|calibration={:?}|min_still_run={}|tolerance={:?}\
         |reps={}|jitter_us={}|faults={:?}|retry_budget={}|recovery={:?}|watchdog={:?}",
        d.screen,
        d.opps,
        d.quantum,
        d.frame_period,
        d.capture,
        d.input_cost_cycles,
        d.ui_render_cycles,
        config.calibration,
        config.min_still_run,
        config.tolerance,
        config.reps,
        config.jitter_us,
        config.faults,
        config.retry_budget,
        config.recovery,
        config.watchdog,
    )
}

/// The write-ahead journal of one study sweep.
///
/// Shared across the sweep's worker threads: appends serialise through a
/// mutex (the fsync dominates anyway), replay lookups read an immutable
/// map built once at open time. Append failures are counted, not
/// propagated — losing durability must not abort a healthy sweep; the
/// caller can surface [`StudyJournal::write_errors`] afterwards.
#[derive(Debug)]
pub struct StudyJournal {
    journal: Mutex<Journal>,
    format: CheckpointFormat,
    fingerprint: u64,
    cached: BTreeMap<(usize, u32), (RepResult, RepOutcome)>,
    torn: usize,
    foreign: usize,
    write_errors: AtomicUsize,
    appends: AtomicU64,
    observer: Option<RecordObserver>,
}

/// A callback a [`StudyJournal`] invokes with every record it appends —
/// after the durable append attempt (successful or not), so the record is
/// on disk before anyone else hears about it. The first argument is the
/// record's *checkpoint sequence number*: a 1-based count of appends this
/// session, assigned under the journal lock so it matches on-disk append
/// order exactly. The sharded-sweep agent stamps streamed checkpoint
/// frames with it, which is what lets a resumed network session say
/// "replay everything after sequence N" instead of restarting the shard;
/// the chaos harness implements crash-on-nth-checkpoint from it.
///
/// Called from whichever worker thread completed the repetition, so the
/// callback must be `Send + Sync` and should serialise its own output.
pub struct RecordObserver(ObserverFn);

/// The boxed callback a [`RecordObserver`] wraps.
type ObserverFn = Box<dyn Fn(u64, &CheckpointRecord) + Send + Sync>;

impl std::fmt::Debug for RecordObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecordObserver(..)")
    }
}

/// Which payload codec a [`StudyJournal`] appends with. Reading always
/// accepts both ([`decode_checkpoint_any`]), so this only governs new
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// One-line JSON payloads in text frames — greppable, debuggable.
    Json,
    /// Compact fixed-width payloads in binary frames — roughly a third
    /// the bytes and no float formatting on the write path.
    Binary,
}

impl CheckpointFormat {
    /// The format implied by a journal path: `.json`/`.jsonl` stay JSON
    /// for debuggability, everything else gets the compact binary codec.
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") | Some("jsonl") => CheckpointFormat::Json,
            _ => CheckpointFormat::Binary,
        }
    }
}

impl StudyJournal {
    /// Starts a fresh journal at `path` (truncating any existing file),
    /// in the format [`CheckpointFormat::for_path`] picks for it.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the file.
    pub fn create(path: impl AsRef<Path>, fingerprint: u64) -> io::Result<Self> {
        let path = path.as_ref();
        Ok(StudyJournal {
            journal: Mutex::new(Journal::create(path)?),
            format: CheckpointFormat::for_path(path),
            fingerprint,
            cached: BTreeMap::new(),
            torn: 0,
            foreign: 0,
            write_errors: AtomicUsize::new(0),
            appends: AtomicU64::new(0),
            observer: None,
        })
    }

    /// Opens `path` for resumption: reads the valid record prefix,
    /// truncates away any torn tail (so new appends extend a clean
    /// prefix), and caches every record whose fingerprint matches.
    /// Records from other datasets/configurations/versions are counted in
    /// [`StudyJournal::foreign`] and otherwise ignored. A missing file
    /// resumes as an empty journal.
    ///
    /// # Errors
    ///
    /// Any I/O error reading, truncating or reopening the file.
    pub fn resume(path: impl AsRef<Path>, fingerprint: u64) -> io::Result<Self> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let decoded = decode_records(&bytes);
        if decoded.valid_len() < bytes.len() {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(decoded.valid_len() as u64)?;
            file.sync_data()?;
        }
        let mut cached = BTreeMap::new();
        let mut foreign = 0;
        for payload in &decoded.records {
            match decode_checkpoint_any(payload) {
                Some(record) if record.fingerprint == fingerprint => {
                    let (config, rep, result, outcome) = record.into_parts();
                    cached.insert((config, rep), (result, outcome));
                }
                _ => foreign += 1,
            }
        }
        Ok(StudyJournal {
            journal: Mutex::new(Journal::open_append(path)?),
            format: CheckpointFormat::for_path(path),
            fingerprint,
            cached,
            torn: decoded.torn,
            foreign,
            write_errors: AtomicUsize::new(0),
            appends: AtomicU64::new(0),
            observer: None,
        })
    }

    /// Installs a [`RecordObserver`] invoked with every subsequently
    /// appended record and its checkpoint sequence number. Set it before
    /// the study starts — the journal is shared immutably across workers
    /// once the sweep is running.
    pub fn set_observer(&mut self, f: impl Fn(u64, &CheckpointRecord) + Send + Sync + 'static) {
        self.observer = Some(RecordObserver(Box::new(f)));
    }

    /// The fingerprint this journal records against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The repetition cached for `(config, rep)`, if the journal holds
    /// one.
    pub fn cached(&self, config: usize, rep: u32) -> Option<(RepResult, RepOutcome)> {
        self.cached.get(&(config, rep)).cloned()
    }

    /// How many repetitions the journal can replay.
    pub fn replayable(&self) -> usize {
        self.cached.len()
    }

    /// Torn/garbled tail records dropped at open time.
    pub fn torn(&self) -> usize {
        self.torn
    }

    /// Well-framed records ignored for fingerprint/version mismatch.
    pub fn foreign(&self) -> usize {
        self.foreign
    }

    /// Appends one completed repetition. Failures are swallowed into
    /// [`StudyJournal::write_errors`]: a full disk costs durability, not
    /// the sweep.
    pub fn record(&self, config: usize, rep: u32, result: &RepResult, outcome: &RepOutcome) {
        let record = CheckpointRecord::new(self.fingerprint, config, rep, result, outcome);
        // The sequence number is assigned under the journal lock so it
        // agrees with on-disk append order even across worker threads.
        let (seq, failed) = match self.journal.lock() {
            Ok(mut journal) => {
                let seq = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
                let failed = match self.format {
                    CheckpointFormat::Json => journal.append(&encode_checkpoint(&record)).is_err(),
                    CheckpointFormat::Binary => {
                        journal.append_binary(&encode_checkpoint_binary(&record)).is_err()
                    }
                };
                (seq, failed)
            }
            Err(_) => (self.appends.fetch_add(1, Ordering::Relaxed) + 1, true),
        };
        if failed {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
        // The observer runs after the append attempt — even a failed one:
        // losing durability must not also lose the streamed copy.
        if let Some(observer) = &self.observer {
            (observer.0)(seq, &record);
        }
    }

    /// Records appended (attempted) this session — the checkpoint
    /// sequence high-water mark passed to the observer.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// The payload codec new records are appended with.
    pub fn format(&self) -> CheckpointFormat {
        self.format
    }

    /// Appends that failed since the journal was opened.
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(name: &str) -> RepResult {
        let mut profile = LagProfile::new(name);
        profile.push(LagEntry {
            interaction_id: 4,
            input_time: SimTime::from_micros(1_234_567),
            lag: SimDuration::from_micros(250_431),
            threshold: SimDuration::from_millis(1_000),
            confidence: 0.1 + 0.2, // deliberately not exactly 0.3
        });
        RepResult {
            profile,
            dynamic_energy_mj: 1234.5678901234567,
            irritation: SimDuration::ZERO,
            match_failures: 0,
            input_faults: 2,
        }
    }

    #[test]
    fn checkpoint_round_trips_bits_exactly() {
        let result = sample_result("ondemand");
        for outcome in [
            RepOutcome::Ok,
            RepOutcome::Retried { attempts: 2 },
            RepOutcome::TimedOut { attempts: 3 },
            RepOutcome::Abandoned { attempts: 3, cause: InterlagError::MissingVideo },
            RepOutcome::Abandoned { attempts: 1, cause: InterlagError::Timeout },
            RepOutcome::Abandoned {
                attempts: 2,
                cause: InterlagError::Match {
                    interaction_id: 9,
                    failure: MatchFailure::EndingNotFound,
                },
            },
            RepOutcome::Abandoned {
                attempts: 2,
                cause: InterlagError::Device(DeviceError::Video(
                    VideoError::NonMonotonicTimestamp {
                        prev: SimTime::from_micros(5),
                        time: SimTime::from_micros(5),
                    },
                )),
            },
            RepOutcome::Abandoned {
                attempts: 4,
                cause: InterlagError::Dataset(DatasetError::BadUtf8 { offset: 17 }),
            },
        ] {
            let record = CheckpointRecord::new(0xfeed, 3, 1, &result, &outcome);
            let decoded = decode_checkpoint(&encode_checkpoint(&record)).expect("decodes");
            let (config, rep, r, o) = decoded.into_parts();
            assert_eq!((config, rep), (3, 1));
            assert_eq!(o, outcome);
            assert_eq!(r.profile, result.profile);
            assert_eq!(r.dynamic_energy_mj.to_bits(), result.dynamic_energy_mj.to_bits());
            assert_eq!(
                r.profile.entries()[0].confidence.to_bits(),
                result.profile.entries()[0].confidence.to_bits()
            );
        }
    }

    #[test]
    fn version_and_garbage_are_rejected_quietly() {
        let record = CheckpointRecord::new(1, 0, 0, &sample_result("x"), &RepOutcome::Ok);
        let mut wrong_version = record.clone();
        wrong_version.version = CHECKPOINT_VERSION + 1;
        assert!(decode_checkpoint(&encode_checkpoint(&wrong_version)).is_none());
        assert!(decode_checkpoint(b"not json").is_none());
        assert!(decode_checkpoint(&[0xff, 0xfe]).is_none());
    }

    #[test]
    fn fingerprint_separates_datasets_and_configs() {
        let base = LabConfig::default();
        let a = study_fingerprint("trace a", &base);
        assert_eq!(a, study_fingerprint("trace a", &base));
        assert_ne!(a, study_fingerprint("trace b", &base));
        let reconfigured = LabConfig { reps: base.reps + 1, ..LabConfig::default() };
        assert_ne!(a, study_fingerprint("trace a", &reconfigured));
        // Worker count and observability are excluded on purpose.
        let more_workers = LabConfig { workers: 64, ..LabConfig::default() };
        assert_eq!(a, study_fingerprint("trace a", &more_workers));
    }

    #[test]
    fn study_journal_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("interlag-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("study.journal");
        let result = sample_result("fixed-1.50 GHz");

        let journal = StudyJournal::create(&path, 0xabc).expect("create");
        journal.record(2, 0, &result, &RepOutcome::Ok);
        journal.record(2, 1, &result, &RepOutcome::Retried { attempts: 2 });
        assert_eq!(journal.write_errors(), 0);
        drop(journal);

        // Append garbage: a torn tail must not poison resumption.
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(&path).expect("open");
        file.write_all(b"0000z").expect("garbage");
        drop(file);

        let resumed = StudyJournal::resume(&path, 0xabc).expect("resume");
        assert_eq!(resumed.replayable(), 2);
        assert_eq!(resumed.torn(), 1);
        assert_eq!(resumed.foreign(), 0);
        let (r, o) = resumed.cached(2, 1).expect("cached");
        assert_eq!(o, RepOutcome::Retried { attempts: 2 });
        assert_eq!(r.profile, result.profile);
        assert!(resumed.cached(2, 2).is_none());

        // A different fingerprint sees only foreign records.
        let other = StudyJournal::resume(&path, 0xdef).expect("resume");
        assert_eq!(other.replayable(), 0);
        assert_eq!(other.foreign(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }
}
