//! Typed pipeline failures.
//!
//! A study repetition can fail at several stage boundaries — the device
//! run itself, the video that should have been captured, the matcher that
//! should have found every annotated ending. Each failure is a value, not
//! a panic, so the self-healing study loop in [`experiment`](crate::experiment)
//! can retry a repetition with a re-derived fault stream and, if the retry
//! budget runs out, report the abandoned repetition with its cause.

use std::error::Error;
use std::fmt;

use interlag_device::DeviceError;

use crate::ingest::DatasetError;
use crate::matcher::MatchFailure;

/// Why a pipeline stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterlagError {
    /// The device run itself failed.
    Device(DeviceError),
    /// The matcher could not resolve an interaction's lag, even after
    /// tolerance escalation.
    Match {
        /// The interaction whose ending was not found.
        interaction_id: usize,
        /// The underlying matcher failure.
        failure: MatchFailure,
    },
    /// A study run produced no video to mark up.
    MissingVideo,
    /// The repetition exceeded its watchdog deadline and was cancelled
    /// cooperatively (device loop or matcher walk).
    Timeout,
    /// A dataset could not be ingested (truncated, mis-encoded or
    /// internally inconsistent input files).
    Dataset(DatasetError),
}

impl fmt::Display for InterlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterlagError::Device(e) => write!(f, "device run failed: {e}"),
            InterlagError::Match { interaction_id, failure } => {
                write!(f, "matching interaction {interaction_id} failed: {failure:?}")
            }
            InterlagError::MissingVideo => write!(f, "run produced no video to mark up"),
            InterlagError::Timeout => {
                write!(f, "repetition exceeded its watchdog deadline and was cancelled")
            }
            InterlagError::Dataset(e) => write!(f, "dataset ingestion failed: {e}"),
        }
    }
}

impl Error for InterlagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InterlagError::Device(e) => Some(e),
            InterlagError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for InterlagError {
    fn from(e: DeviceError) -> Self {
        match e {
            // A cancelled device run is the watchdog speaking, not a
            // device defect: surface it as the timeout it is.
            DeviceError::Cancelled => InterlagError::Timeout,
            other => InterlagError::Device(other),
        }
    }
}

impl From<DatasetError> for InterlagError {
    fn from(e: DatasetError) -> Self {
        InterlagError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_stage() {
        let e = InterlagError::Match { interaction_id: 3, failure: MatchFailure::EndingNotFound };
        assert!(format!("{e}").contains("interaction 3"));
        assert!(format!("{}", InterlagError::MissingVideo).contains("video"));
    }
}
