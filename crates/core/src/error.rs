//! Typed pipeline failures.
//!
//! A study repetition can fail at several stage boundaries — the device
//! run itself, the video that should have been captured, the matcher that
//! should have found every annotated ending. Each failure is a value, not
//! a panic, so the self-healing study loop in [`experiment`](crate::experiment)
//! can retry a repetition with a re-derived fault stream and, if the retry
//! budget runs out, report the abandoned repetition with its cause.

use std::error::Error;
use std::fmt;

use interlag_device::DeviceError;

use crate::matcher::MatchFailure;

/// Why a pipeline stage failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterlagError {
    /// The device run itself failed.
    Device(DeviceError),
    /// The matcher could not resolve an interaction's lag, even after
    /// tolerance escalation.
    Match {
        /// The interaction whose ending was not found.
        interaction_id: usize,
        /// The underlying matcher failure.
        failure: MatchFailure,
    },
    /// A study run produced no video to mark up.
    MissingVideo,
}

impl fmt::Display for InterlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterlagError::Device(e) => write!(f, "device run failed: {e}"),
            InterlagError::Match { interaction_id, failure } => {
                write!(f, "matching interaction {interaction_id} failed: {failure:?}")
            }
            InterlagError::MissingVideo => write!(f, "run produced no video to mark up"),
        }
    }
}

impl Error for InterlagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InterlagError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for InterlagError {
    fn from(e: DeviceError) -> Self {
        InterlagError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_stage() {
        let e = InterlagError::Match { interaction_id: 3, failure: MatchFailure::EndingNotFound };
        assert!(format!("{e}").contains("interaction 3"));
        assert!(format!("{}", InterlagError::MissingVideo).contains("video"));
    }
}
