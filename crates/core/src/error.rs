//! Typed pipeline failures.
//!
//! A study repetition can fail at several stage boundaries — the device
//! run itself, the video that should have been captured, the matcher that
//! should have found every annotated ending. Each failure is a value, not
//! a panic, so the self-healing study loop in [`experiment`](crate::experiment)
//! can retry a repetition with a re-derived fault stream and, if the retry
//! budget runs out, report the abandoned repetition with its cause.

use std::error::Error;
use std::fmt;

use interlag_device::DeviceError;
use serde::{Deserialize, Serialize};

use crate::ingest::DatasetError;
use crate::matcher::MatchFailure;

/// Why a sweep supervisor gave up on the shard that owned a repetition.
///
/// Unlike the other [`InterlagError`] variants this failure is not
/// observed *inside* the pipeline: it is synthesised by the orchestrator
/// when an agent process exhausts its re-dispatch budget, so the merged
/// report can carry a per-repetition cause instead of a silent hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardFailure {
    /// The agent process died (crash, SIGKILL, non-zero exit) on every
    /// dispatch attempt.
    Crashed,
    /// The agent stopped making checkpoint progress and was killed by the
    /// supervisor's watchdog on every dispatch attempt.
    Wedged,
    /// The shard's returned journal never yielded a valid record for this
    /// repetition (corrupt frames, foreign fingerprints).
    Corrupt,
}

/// Why a pipeline stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterlagError {
    /// The device run itself failed.
    Device(DeviceError),
    /// The matcher could not resolve an interaction's lag, even after
    /// tolerance escalation.
    Match {
        /// The interaction whose ending was not found.
        interaction_id: usize,
        /// The underlying matcher failure.
        failure: MatchFailure,
    },
    /// A study run produced no video to mark up.
    MissingVideo,
    /// The repetition exceeded its watchdog deadline and was cancelled
    /// cooperatively (device loop or matcher walk).
    Timeout,
    /// A dataset could not be ingested (truncated, mis-encoded or
    /// internally inconsistent input files).
    Dataset(DatasetError),
    /// The sweep supervisor abandoned the shard that owned this
    /// repetition after exhausting its re-dispatch budget.
    Shard {
        /// How the shard kept failing.
        failure: ShardFailure,
    },
}

impl fmt::Display for InterlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterlagError::Device(e) => write!(f, "device run failed: {e}"),
            InterlagError::Match { interaction_id, failure } => {
                write!(f, "matching interaction {interaction_id} failed: {failure:?}")
            }
            InterlagError::MissingVideo => write!(f, "run produced no video to mark up"),
            InterlagError::Timeout => {
                write!(f, "repetition exceeded its watchdog deadline and was cancelled")
            }
            InterlagError::Dataset(e) => write!(f, "dataset ingestion failed: {e}"),
            InterlagError::Shard { failure } => {
                let how = match failure {
                    ShardFailure::Crashed => "kept crashing",
                    ShardFailure::Wedged => "kept wedging past the heartbeat watchdog",
                    ShardFailure::Corrupt => "never returned a valid record",
                };
                write!(f, "sweep shard owning this repetition {how} and was abandoned")
            }
        }
    }
}

impl Error for InterlagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InterlagError::Device(e) => Some(e),
            InterlagError::Dataset(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for InterlagError {
    fn from(e: DeviceError) -> Self {
        match e {
            // A cancelled device run is the watchdog speaking, not a
            // device defect: surface it as the timeout it is.
            DeviceError::Cancelled => InterlagError::Timeout,
            other => InterlagError::Device(other),
        }
    }
}

impl From<DatasetError> for InterlagError {
    fn from(e: DatasetError) -> Self {
        InterlagError::Dataset(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failing_stage() {
        let e = InterlagError::Match { interaction_id: 3, failure: MatchFailure::EndingNotFound };
        assert!(format!("{e}").contains("interaction 3"));
        assert!(format!("{}", InterlagError::MissingVideo).contains("video"));
    }
}
