//! Exporters: study results as CSV and Markdown.
//!
//! The bench harnesses print human tables; downstream users want the raw
//! rows. These exporters render a [`StudyResult`] into formats that drop
//! straight into spreadsheets, papers or dashboards, covering the three
//! views the evaluation uses: the per-configuration summary (Figures
//! 12–14), the per-lag profile of one configuration (Figure 11's raw
//! data), and the oracle's decision log.

use std::fmt::Write as _;

use crate::experiment::{ConfigSummary, StudyResult};
use crate::ingest::IngestReport;

/// Escapes one CSV field (quotes fields containing separators).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The per-configuration summary as CSV:
/// `config,kind,freq_khz,mean_energy_mj,energy_vs_oracle,mean_irritation_ms,lags,reps`.
///
/// # Examples
///
/// ```
/// use interlag_core::experiment::Lab;
/// use interlag_core::report::study_csv;
/// use interlag_device::script::InteractionCategory;
/// use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};
///
/// let mut b = WorkloadBuilder::new(3);
/// b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
/// let study = Lab::with_defaults().study(&b.build("w", "d")).expect("study");
/// let csv = study_csv(&study);
/// assert_eq!(csv.lines().count(), 1 + 18); // header + configurations
/// assert!(csv.lines().nth(1).unwrap().starts_with("fixed-0.30 GHz,fixed,300000,"));
/// ```
pub fn study_csv(study: &StudyResult) -> String {
    let mut out = String::from(
        "config,kind,freq_khz,mean_energy_mj,energy_vs_oracle,mean_irritation_ms,lags,reps\n",
    );
    for c in study.all_configs() {
        let kind = if c.freq.is_some() {
            "fixed"
        } else if c.name == "oracle" {
            "oracle"
        } else {
            "governor"
        };
        let freq = c.freq.map(|f| f.as_khz().to_string()).unwrap_or_default();
        // First *measured* repetition: under fault injection repetition 0
        // can be an abandoned placeholder with an empty profile, which
        // used to report `lags = 0` for a configuration that measured
        // fine in its surviving repetitions.
        let lags = c.measured().next().map(|r| r.profile.len()).unwrap_or(0);
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.4},{:.3},{},{}",
            csv_field(&c.name),
            kind,
            freq,
            c.mean_energy_mj(),
            study.energy_normalised(c),
            c.mean_irritation().as_millis_f64(),
            lags,
            c.reps.len(),
        );
    }
    out
}

/// One configuration's lag profile (first measured repetition) as CSV:
/// `interaction_id,input_time_us,lag_ms,threshold_ms`.
///
/// Abandoned placeholder repetitions are skipped, so a fault that
/// abandons repetition 0 does not blank the whole export.
pub fn profile_csv(config: &ConfigSummary) -> String {
    let mut out = String::from("interaction_id,input_time_us,lag_ms,threshold_ms\n");
    if let Some(rep) = config.measured().next() {
        for e in rep.profile.entries() {
            let _ = writeln!(
                out,
                "{},{},{:.3},{:.3}",
                e.interaction_id,
                e.input_time.as_micros(),
                e.lag.as_millis_f64(),
                e.threshold.as_millis_f64(),
            );
        }
    }
    out
}

/// The oracle's per-lag decisions as CSV:
/// `interaction_id,input_time_us,freq_khz,hold_ms,threshold_ms`.
pub fn oracle_csv(study: &StudyResult) -> String {
    let mut out = String::from("interaction_id,input_time_us,freq_khz,hold_ms,threshold_ms\n");
    for d in &study.oracle_detail.decisions {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:.3}",
            d.interaction_id,
            d.input_time.as_micros(),
            d.freq.as_khz(),
            d.hold.as_millis_f64(),
            d.threshold.as_millis_f64(),
        );
    }
    out
}

/// The per-configuration summary as a GitHub-flavoured Markdown table.
pub fn study_markdown(study: &StudyResult) -> String {
    let mut out = format!(
        "### Study: dataset {}\n\n\
         | config | energy (J) | vs oracle | irritation (s) |\n\
         |---|---:|---:|---:|\n",
        study.workload
    );
    for c in study.all_configs() {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2}× | {:.2} |",
            c.name,
            c.mean_energy_mj() / 1_000.0,
            study.energy_normalised(c),
            c.mean_irritation().as_secs_f64(),
        );
    }
    out
}

/// [`study_markdown`] annotated with robustness context: a repetition
/// outcome section when any repetition was retried, timed out or
/// abandoned, and an ingestion section when salvage-mode loading dropped
/// anything. For a clean study over a clean dataset the output is
/// byte-identical to [`study_markdown`], so healthy reports never change
/// shape.
pub fn study_markdown_with_ingest(study: &StudyResult, ingest: &IngestReport) -> String {
    let mut out = study_markdown(study);
    let degraded: Vec<&ConfigSummary> =
        study.all_configs().filter(|c| c.retried() + c.timed_out() + c.abandoned() > 0).collect();
    if !degraded.is_empty() {
        out.push_str(
            "\n#### Repetition outcomes\n\n\
             | config | reps | retried | timed out | abandoned |\n\
             |---|---:|---:|---:|---:|\n",
        );
        for c in degraded {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                c.name,
                c.reps.len(),
                c.retried(),
                c.timed_out(),
                c.abandoned(),
            );
        }
    }
    if !ingest.is_clean() {
        out.push_str("\n#### Ingestion (salvage mode)\n\n");
        let _ = writeln!(
            out,
            "{} unparseable input(s) dropped: {} trace line(s), {} annotation(s), \
             {} manifest line(s).\n",
            ingest.total_dropped(),
            ingest.dropped_trace_lines,
            ingest.dropped_annotations,
            ingest.dropped_manifest_lines,
        );
        for note in &ingest.notes {
            let _ = writeln!(out, "- {note}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Lab, LabConfig};
    use interlag_device::script::InteractionCategory;
    use interlag_workloads::gen::{WorkloadBuilder, MCYCLES};

    fn small_study() -> StudyResult {
        let mut b = WorkloadBuilder::new(88);
        b.app_launch("launch", 300 * MCYCLES, 4, InteractionCategory::Common);
        b.think_ms(1_500, 2_500);
        b.quick_tap("tap", 100 * MCYCLES, InteractionCategory::SimpleFrequent);
        Lab::new(LabConfig::default()).study(&b.build("report", "report test")).expect("study")
    }

    #[test]
    fn csv_has_all_configurations_and_parses_numerically() {
        let study = small_study();
        let csv = study_csv(&study);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 19);
        assert!(lines[0].starts_with("config,kind"));
        for line in &lines[1..] {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 8, "{line}");
            fields[3].parse::<f64>().expect("energy parses");
            fields[4].parse::<f64>().expect("ratio parses");
        }
        // Oracle row normalises to exactly 1.
        let oracle_row = lines.iter().find(|l| l.starts_with("oracle,")).expect("row");
        assert!(oracle_row.contains(",1.0000,"));
    }

    #[test]
    fn profile_csv_lists_every_lag() {
        let study = small_study();
        let ond = study.config("ondemand").expect("present");
        let csv = profile_csv(ond);
        assert_eq!(csv.lines().count(), 1 + study.db.len());
    }

    #[test]
    fn oracle_csv_lists_every_decision() {
        let study = small_study();
        let csv = oracle_csv(&study);
        assert_eq!(csv.lines().count(), 1 + study.oracle_detail.decisions.len());
        assert!(csv.lines().nth(1).expect("one decision").split(',').count() == 5);
    }

    #[test]
    fn markdown_is_a_wellformed_table() {
        let study = small_study();
        let md = study_markdown(&study);
        assert!(md.contains("| config |"));
        assert_eq!(md.matches("| fixed-").count(), 14);
        assert!(md.contains("| oracle |"));
    }

    #[test]
    fn abandoned_first_rep_does_not_blank_exports() {
        use crate::error::InterlagError;
        use crate::experiment::{RepOutcome, RepResult};
        use crate::profile::LagProfile;
        use interlag_evdev::time::SimDuration;

        let mut study = small_study();
        let idx = study.governors.iter().position(|c| c.name == "ondemand").expect("present");
        let expected_lags = study.governors[idx].reps[0].profile.len();
        assert!(expected_lags > 0, "sanity: the study measured something");

        // Simulate a fault run that abandoned repetition 0: its slot is an
        // empty placeholder, exactly as Lab::study records it.
        let cfg = &mut study.governors[idx];
        cfg.reps.insert(
            0,
            RepResult {
                profile: LagProfile::new("ondemand"),
                dynamic_energy_mj: 0.0,
                irritation: SimDuration::ZERO,
                match_failures: 0,
                input_faults: 0,
            },
        );
        cfg.outcomes = std::iter::once(RepOutcome::Abandoned {
            attempts: 3,
            cause: InterlagError::MissingVideo,
        })
        .chain((1..cfg.reps.len()).map(|_| RepOutcome::Ok))
        .collect();

        // The lag profile export must come from the first *measured* rep…
        let csv = profile_csv(&study.governors[idx]);
        assert_eq!(csv.lines().count(), 1 + expected_lags);

        // …and the summary's lag count likewise.
        let summary = study_csv(&study);
        let row = summary.lines().find(|l| l.starts_with("ondemand,")).expect("row");
        let lags: usize = row.split(',').nth(6).expect("lags field").parse().expect("number");
        assert_eq!(lags, expected_lags);
    }

    #[test]
    fn clean_study_over_clean_dataset_keeps_the_plain_markdown() {
        let study = small_study();
        let clean = IngestReport::default();
        assert!(clean.is_clean());
        assert_eq!(study_markdown_with_ingest(&study, &clean), study_markdown(&study));
    }

    #[test]
    fn salvage_and_outcome_sections_appear_when_degraded() {
        use crate::experiment::RepOutcome;

        let mut study = small_study();
        let mut ingest = IngestReport { dropped_trace_lines: 3, ..Default::default() };
        ingest.note("trace line 7: malformed hex field");
        study.governors[0].outcomes[0] = RepOutcome::TimedOut { attempts: 3 };

        let md = study_markdown_with_ingest(&study, &ingest);
        assert!(md.contains("#### Repetition outcomes"));
        assert!(md.contains("| conservative | 1 | 0 | 1 | 0 |"));
        assert!(md.contains("#### Ingestion (salvage mode)"));
        assert!(md.contains("3 trace line(s)"));
        assert!(md.contains("- trace line 7: malformed hex field"));
    }

    #[test]
    fn csv_field_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
