//! Lag profiles: the per-execution list of measured interaction lags.
//!
//! A lag profile is what one marked-up video boils down to: for every
//! (non-spurious) interaction, how long the user waited. Profiles of
//! different executions of the same workload are directly comparable
//! because replay guarantees the same interactions in the same order —
//! the paper's central trick.

use serde::{Deserialize, Serialize};

use interlag_evdev::time::{SimDuration, SimTime};

/// One measured interaction lag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagEntry {
    /// The interaction this lag belongs to.
    pub interaction_id: usize,
    /// When the input was issued.
    pub input_time: SimTime,
    /// The measured lag length.
    pub lag: SimDuration,
    /// The irritation threshold annotated for this lag (HCI category
    /// default unless overridden).
    pub threshold: SimDuration,
    /// Match confidence: `1.0` for a lag matched at the annotated
    /// tolerance, lower when the matcher had to escalate tolerances to
    /// recover the ending (see `MatchPolicy` in the matcher module).
    pub confidence: f64,
}

/// The lag profile of one workload execution.
///
/// # Examples
///
/// ```
/// use interlag_core::profile::{LagEntry, LagProfile};
/// use interlag_evdev::time::{SimDuration, SimTime};
///
/// let mut p = LagProfile::new("ondemand");
/// p.push(LagEntry {
///     interaction_id: 0,
///     input_time: SimTime::from_secs(1),
///     lag: SimDuration::from_millis(300),
///     threshold: SimDuration::from_secs(1),
///     confidence: 1.0,
/// });
/// assert_eq!(p.len(), 1);
/// assert_eq!(p.mean_lag(), SimDuration::from_millis(300));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LagProfile {
    /// The system configuration that produced this execution
    /// (`"ondemand"`, `"fixed-0.96 GHz"`, `"oracle"`, …).
    pub config: String,
    entries: Vec<LagEntry>,
}

impl LagProfile {
    /// Creates an empty profile for a configuration.
    pub fn new(config: impl Into<String>) -> Self {
        LagProfile { config: config.into(), entries: Vec::new() }
    }

    /// Appends a lag (in interaction order).
    pub fn push(&mut self, entry: LagEntry) {
        self.entries.push(entry);
    }

    /// The lags in interaction order.
    pub fn entries(&self) -> &[LagEntry] {
        &self.entries
    }

    /// The lag of interaction `id`, if measured.
    pub fn lag_of(&self, id: usize) -> Option<SimDuration> {
        self.entries.iter().find(|e| e.interaction_id == id).map(|e| e.lag)
    }

    /// Number of measured lags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no lags were measured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All lag lengths, in interaction order.
    pub fn lags(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.entries.iter().map(|e| e.lag)
    }

    /// Lag lengths in milliseconds (the paper's plotting unit).
    pub fn lags_ms(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.lag.as_millis_f64()).collect()
    }

    /// Arithmetic mean lag; zero for an empty profile.
    pub fn mean_lag(&self) -> SimDuration {
        if self.entries.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self.lags().sum();
        total / self.entries.len() as u64
    }

    /// The longest lag; zero for an empty profile.
    pub fn max_lag(&self) -> SimDuration {
        self.lags().max().unwrap_or(SimDuration::ZERO)
    }

    /// Sum of all lags.
    pub fn total_lag(&self) -> SimDuration {
        self.lags().sum()
    }

    /// The weakest match confidence in the profile; `1.0` for an empty
    /// profile (nothing was recovered, so nothing is in doubt).
    pub fn min_confidence(&self) -> f64 {
        self.entries.iter().map(|e| e.confidence).fold(1.0, f64::min)
    }

    /// How many lags were matched below full confidence, i.e. needed
    /// tolerance escalation to resolve.
    pub fn recovered_lags(&self) -> usize {
        self.entries.iter().filter(|e| e.confidence < 1.0).count()
    }
}

impl Extend<LagEntry> for LagProfile {
    fn extend<I: IntoIterator<Item = LagEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, lag_ms: u64) -> LagEntry {
        LagEntry {
            interaction_id: id,
            input_time: SimTime::from_secs(id as u64),
            lag: SimDuration::from_millis(lag_ms),
            threshold: SimDuration::from_secs(1),
            confidence: 1.0,
        }
    }

    #[test]
    fn aggregates() {
        let mut p = LagProfile::new("test");
        p.extend([entry(0, 100), entry(1, 300), entry(2, 200)]);
        assert_eq!(p.mean_lag(), SimDuration::from_millis(200));
        assert_eq!(p.max_lag(), SimDuration::from_millis(300));
        assert_eq!(p.total_lag(), SimDuration::from_millis(600));
        assert_eq!(p.lag_of(1), Some(SimDuration::from_millis(300)));
        assert_eq!(p.lag_of(9), None);
    }

    #[test]
    fn empty_profile_is_well_behaved() {
        let p = LagProfile::new("empty");
        assert!(p.is_empty());
        assert_eq!(p.mean_lag(), SimDuration::ZERO);
        assert_eq!(p.max_lag(), SimDuration::ZERO);
        assert!(p.lags_ms().is_empty());
        assert_eq!(p.min_confidence(), 1.0);
        assert_eq!(p.recovered_lags(), 0);
    }

    #[test]
    fn confidence_aggregates_track_recovered_lags() {
        let mut p = LagProfile::new("test");
        p.extend([entry(0, 100), entry(1, 200)]);
        assert_eq!(p.min_confidence(), 1.0);
        let mut weak = entry(2, 300);
        weak.confidence = 0.5;
        p.push(weak);
        assert_eq!(p.min_confidence(), 0.5);
        assert_eq!(p.recovered_lags(), 1);
    }
}
