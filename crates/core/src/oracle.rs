//! Oracle construction (§III-B).
//!
//! From the 14 fixed-frequency lag profiles the study composes, per
//! workload, an *optimal frequency trace*: for every interaction lag the
//! lowest frequency whose measured lag stays within 110 % of what the
//! fastest frequency achieved; outside lags, the frequency with the
//! lowest overall energy for the workload (the race-to-idle optimum,
//! 0.96 GHz on this platform). Replayed through a
//! [`PlanGovernor`](interlag_governors::plan::PlanGovernor), the plan
//! yields the least energy possible while — by construction — never
//! irritating the user.

use std::collections::BTreeMap;

use interlag_evdev::time::{SimDuration, SimTime};
use interlag_governors::plan::FrequencyPlan;
use interlag_power::opp::Frequency;

use crate::profile::LagProfile;

/// Configuration of the oracle builder.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleConfig {
    /// The slack factor over the fastest frequency's lag (1.1 = the
    /// paper's "user does not notice a 10 % difference").
    pub slack_factor: f64,
    /// The frequency used outside interaction lags (the workload's most
    /// energy-efficient fixed point).
    pub efficient_freq: Frequency,
    /// Safety margin added to the measured hold time of each lag, so the
    /// raised frequency is not dropped a frame too early.
    pub hold_margin: SimDuration,
    /// How far before each input the boost begins. The offline trace
    /// knows the input times, and a small lead absorbs the sampling
    /// latency of the trace-following governor — this is what guarantees
    /// the paper's "by definition, the oracle is not irritating at all":
    /// the boosted frequency is already active when the input lands, so
    /// the oracle's lag can never exceed the fixed-frequency lag its
    /// threshold was derived from.
    pub boost_lead: SimDuration,
}

impl OracleConfig {
    /// The paper's settings for a given efficient frequency.
    pub fn paper(efficient_freq: Frequency) -> Self {
        OracleConfig {
            slack_factor: 1.1,
            efficient_freq,
            hold_margin: SimDuration::from_millis(40),
            boost_lead: SimDuration::from_millis(10),
        }
    }
}

/// The per-lag decisions the builder took, for reporting and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleDecision {
    /// The interaction.
    pub interaction_id: usize,
    /// When its input arrives.
    pub input_time: SimTime,
    /// The frequency chosen for the lag.
    pub freq: Frequency,
    /// The lag measured at that frequency (how long the boost holds).
    pub hold: SimDuration,
    /// The threshold (slack × fastest lag) the choice had to meet.
    pub threshold: SimDuration,
}

/// An oracle plan plus its decision log.
#[derive(Debug, Clone, PartialEq)]
pub struct Oracle {
    /// The frequency trace to replay.
    pub plan: FrequencyPlan,
    /// Why each lag got the frequency it did.
    pub decisions: Vec<OracleDecision>,
}

/// Builds the oracle for one workload.
///
/// `fixed_profiles` maps each fixed frequency to the lag profile measured
/// (via the video pipeline) when replaying the workload pinned to it. The
/// fastest frequency in the map is the reference. Lags missing from a
/// frequency's profile (ending never found) disqualify that frequency for
/// that lag.
///
/// # Panics
///
/// Panics if `fixed_profiles` is empty.
pub fn build_oracle(
    fixed_profiles: &BTreeMap<Frequency, LagProfile>,
    config: &OracleConfig,
) -> Oracle {
    assert!(!fixed_profiles.is_empty(), "oracle needs fixed-frequency profiles");
    let fastest = *fixed_profiles.keys().next_back().expect("non-empty map");
    let reference = &fixed_profiles[&fastest];

    // Per-lag choices.
    let mut decisions = Vec::new();
    for entry in reference.entries() {
        let id = entry.interaction_id;
        let threshold = entry.lag.mul_f64(config.slack_factor);
        // Lowest frequency whose measured lag meets the threshold; the
        // fastest frequency always does (1.1 × itself).
        let (freq, hold) = fixed_profiles
            .iter()
            .find_map(|(f, profile)| {
                profile.lag_of(id).filter(|lag| *lag <= threshold).map(|lag| (*f, lag))
            })
            .unwrap_or((fastest, entry.lag));
        decisions.push(OracleDecision {
            interaction_id: id,
            input_time: entry.input_time,
            freq,
            hold: hold + config.hold_margin,
            threshold,
        });
    }

    // Compose the step function. Overlapping boosts (a lag still being
    // serviced when the next input arrives) take the maximum of the
    // active frequencies.
    let mut events: Vec<(SimTime, i32, Frequency)> = Vec::new();
    for d in &decisions {
        let boost_at = SimTime::from_micros(
            d.input_time.as_micros().saturating_sub(config.boost_lead.as_micros()),
        );
        events.push((boost_at, 1, d.freq));
        events.push((d.input_time + d.hold, -1, d.freq));
    }
    events.sort_by_key(|(t, delta, _)| (*t, *delta));

    let mut plan = FrequencyPlan::new(config.efficient_freq);
    let mut active: Vec<Frequency> = Vec::new();
    for (t, delta, f) in events {
        if delta > 0 {
            active.push(f);
        } else if let Some(pos) = active.iter().position(|x| *x == f) {
            active.remove(pos);
        }
        let current = active.iter().copied().max().unwrap_or(config.efficient_freq);
        plan.set_from(t, current.max(config.efficient_freq));
    }
    plan.simplify();
    Oracle { plan, decisions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LagEntry;

    fn entry(id: usize, at_s: u64, lag_ms: u64) -> LagEntry {
        LagEntry {
            interaction_id: id,
            input_time: SimTime::from_secs(at_s),
            lag: SimDuration::from_millis(lag_ms),
            threshold: SimDuration::from_secs(1),
            confidence: 1.0,
        }
    }

    fn profiles() -> BTreeMap<Frequency, LagProfile> {
        // Three frequencies; lag scales inversely with frequency.
        let mut map = BTreeMap::new();
        for (mhz, scale) in [(300u32, 7.0f64), (960, 2.2), (2_150, 1.0)] {
            let mut p = LagProfile::new(format!("fixed-{mhz}"));
            p.push(entry(0, 10, (100.0 * scale) as u64));
            p.push(entry(1, 20, (1_000.0 * scale) as u64));
            map.insert(Frequency::from_mhz(mhz), p);
        }
        map
    }

    fn config() -> OracleConfig {
        OracleConfig::paper(Frequency::from_mhz(960))
    }

    #[test]
    fn picks_the_lowest_adequate_frequency() {
        let oracle = build_oracle(&profiles(), &config());
        // Lag 0: fastest = 100 ms, threshold 110 ms; 960 MHz gives 220 ms
        // (too slow), 300 MHz 700 ms → only 2 150 MHz qualifies.
        assert_eq!(oracle.decisions[0].freq, Frequency::from_mhz(2_150));
        // Same ratios for lag 1 → also the fastest.
        assert_eq!(oracle.decisions[1].freq, Frequency::from_mhz(2_150));
    }

    #[test]
    fn generous_slack_admits_slower_frequencies() {
        let mut cfg = config();
        cfg.slack_factor = 2.5; // 960 MHz (2.2×) now qualifies
        let oracle = build_oracle(&profiles(), &cfg);
        assert_eq!(oracle.decisions[0].freq, Frequency::from_mhz(960));
        // 300 MHz (7×) still does not.
        assert_ne!(oracle.decisions[1].freq, Frequency::from_mhz(300));
    }

    #[test]
    fn plan_boosts_during_lags_and_rests_at_efficient() {
        let oracle = build_oracle(&profiles(), &config());
        let plan = &oracle.plan;
        // Before the first input: efficient frequency.
        assert_eq!(plan.freq_at(SimTime::from_secs(5)), Frequency::from_mhz(960));
        // During lag 0.
        assert_eq!(
            plan.freq_at(SimTime::from_secs(10) + SimDuration::from_millis(50)),
            Frequency::from_mhz(2_150)
        );
        // Well after lag 0, before lag 1.
        assert_eq!(plan.freq_at(SimTime::from_secs(15)), Frequency::from_mhz(960));
        // During lag 1.
        assert_eq!(
            plan.freq_at(SimTime::from_secs(20) + SimDuration::from_millis(500)),
            Frequency::from_mhz(2_150)
        );
    }

    #[test]
    fn overlapping_boosts_take_the_maximum() {
        let mut map = BTreeMap::new();
        // Two lags 100 ms apart; the first holds for 10 s.
        for (mhz, l0, l1) in [(960u32, 9_500u64, 150u64), (2_150, 9_000, 60)] {
            let mut p = LagProfile::new(format!("fixed-{mhz}"));
            p.push(LagEntry {
                interaction_id: 0,
                input_time: SimTime::from_secs(10),
                lag: SimDuration::from_millis(l0),
                threshold: SimDuration::from_secs(1),
                confidence: 1.0,
            });
            p.push(LagEntry {
                interaction_id: 1,
                input_time: SimTime::from_millis(10_100),
                lag: SimDuration::from_millis(l1),
                threshold: SimDuration::from_secs(1),
                confidence: 1.0,
            });
            map.insert(Frequency::from_mhz(mhz), p);
        }
        let oracle = build_oracle(&map, &config());
        // Lag 0 qualifies at 960 (9.5 s ≤ 1.1 × 9 s = 9.9 s); lag 1 needs 2 150.
        assert_eq!(oracle.decisions[0].freq, Frequency::from_mhz(960));
        assert_eq!(oracle.decisions[1].freq, Frequency::from_mhz(2_150));
        // While both are active, the plan runs at the max of the two.
        let during_both = SimTime::from_millis(10_120);
        assert_eq!(oracle.plan.freq_at(during_both), Frequency::from_mhz(2_150));
        // After lag 1's short hold expires, lag 0's boost continues.
        let after_lag1 = SimTime::from_millis(10_300);
        assert_eq!(oracle.plan.freq_at(after_lag1), Frequency::from_mhz(960));
    }

    #[test]
    #[should_panic(expected = "fixed-frequency profiles")]
    fn empty_profiles_rejected() {
        build_oracle(&BTreeMap::new(), &config());
    }
}
