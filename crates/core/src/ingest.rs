//! Hardened dataset ingestion: strict and salvage loaders for the three
//! on-disk inputs a study can consume.
//!
//! Real capture rigs produce imperfect files — a `getevent` log cut off
//! mid-line by a dying adb connection, an annotation database whose masks
//! were drawn against a different screen, a video manifest referencing
//! frames that never made it to disk. The loaders here never panic on any
//! of that: every defect is a typed [`DatasetError`] carrying enough
//! byte-offset or line context to find it in the file. Callers choose a
//! policy per load:
//!
//! * [`IngestMode::Strict`] — the first defect aborts the load with its
//!   error (the `--strict` CLI behaviour, exit code 3);
//! * [`IngestMode::Salvage`] — defective lines and annotations are
//!   dropped, counted and reported in the accompanying [`IngestReport`],
//!   and the study runs on what survived (the default CLI behaviour).

use std::error::Error;
use std::fmt;

use interlag_evdev::trace::{parse_getevent_line, EventTrace};
use interlag_obs::{Counter, Recorder};
use interlag_video::frame::Rect;
use interlag_video::manifest::{parse_manifest, parse_manifest_salvage, ManifestError};
use interlag_video::stream::VideoStream;

use crate::annotation::AnnotationDb;

/// Why a dataset file could not be ingested.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetError {
    /// The file is not valid UTF-8; `offset` is the first bad byte.
    BadUtf8 {
        /// Byte offset of the first invalid sequence.
        offset: usize,
    },
    /// A `getevent` trace line could not be parsed.
    Trace {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The trace parsed but contains no events at all.
    EmptyTrace,
    /// The annotation database is not valid JSON for [`AnnotationDb`].
    AnnotationDb {
        /// The deserialiser's complaint.
        reason: String,
    },
    /// An annotation's mask excludes pixels outside its referenced ending
    /// frame — the mask was drawn against a different frame geometry.
    MaskOutOfBounds {
        /// The annotation whose mask disagrees with its frame.
        interaction_id: usize,
        /// The offending excluded rectangle (exclusive corner).
        rect_x1: u32,
        /// The offending excluded rectangle (exclusive corner).
        rect_y1: u32,
        /// The referenced frame's width.
        frame_width: u32,
        /// The referenced frame's height.
        frame_height: u32,
    },
    /// The video-stream manifest is defective.
    Manifest(ManifestError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadUtf8 { offset } => {
                write!(f, "invalid UTF-8 at byte offset {offset}")
            }
            DatasetError::Trace { line, reason } => {
                write!(f, "getevent trace line {line}: {reason}")
            }
            DatasetError::EmptyTrace => write!(f, "trace contains no events"),
            DatasetError::AnnotationDb { reason } => {
                write!(f, "annotation database: {reason}")
            }
            DatasetError::MaskOutOfBounds {
                interaction_id,
                rect_x1,
                rect_y1,
                frame_width,
                frame_height,
            } => write!(
                f,
                "annotation {interaction_id}: mask rect extends to ({rect_x1}, {rect_y1}) \
                 outside its {frame_width}x{frame_height} ending frame"
            ),
            DatasetError::Manifest(e) => write!(f, "video manifest: {e}"),
        }
    }
}

impl Error for DatasetError {}

impl From<ManifestError> for DatasetError {
    fn from(e: ManifestError) -> Self {
        DatasetError::Manifest(e)
    }
}

/// What a loader does when it meets a defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// Fail fast: the first defect aborts the load.
    Strict,
    /// Drop the defective piece, count it, keep going.
    Salvage,
}

/// What salvage-mode loading had to throw away.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// `getevent` lines dropped as unparseable.
    pub dropped_trace_lines: usize,
    /// Annotations dropped for mask/frame disagreement.
    pub dropped_annotations: usize,
    /// Manifest directives dropped as defective.
    pub dropped_manifest_lines: usize,
    /// Human-readable notes, one per distinct defect (capped).
    pub notes: Vec<String>,
}

/// At most this many per-defect notes are kept; beyond it only the
/// counters grow (a 100 MB file of garbage must not balloon the report).
const MAX_NOTES: usize = 16;

impl IngestReport {
    /// `true` when nothing was dropped — the dataset was clean.
    pub fn is_clean(&self) -> bool {
        self.dropped_trace_lines == 0
            && self.dropped_annotations == 0
            && self.dropped_manifest_lines == 0
    }

    /// Total pieces dropped across all loaders.
    pub fn total_dropped(&self) -> usize {
        self.dropped_trace_lines + self.dropped_annotations + self.dropped_manifest_lines
    }

    /// Records a human-readable note about a dropped piece, capped at
    /// [`MAX_NOTES`] so an all-garbage file cannot balloon the report.
    pub fn note(&mut self, text: impl Into<String>) {
        if self.notes.len() < MAX_NOTES {
            self.notes.push(text.into());
        }
    }

    /// Folds another report's counts and notes into this one.
    pub fn merge(&mut self, other: IngestReport) {
        self.dropped_trace_lines += other.dropped_trace_lines;
        self.dropped_annotations += other.dropped_annotations;
        self.dropped_manifest_lines += other.dropped_manifest_lines;
        for n in other.notes {
            self.note(n);
        }
    }
}

/// Loads a `getevent` trace from raw file bytes.
///
/// Strict mode rejects the file on the first bad byte or line, with its
/// offset. Salvage mode decodes lossily, drops each unparseable line and
/// records it, and only fails when *nothing* survives (an all-garbage
/// file is corrupt however forgiving the reader).
///
/// # Errors
///
/// [`DatasetError::BadUtf8`] / [`DatasetError::Trace`] in strict mode;
/// [`DatasetError::EmptyTrace`] in either mode when no event survives.
pub fn load_trace_bytes(
    bytes: &[u8],
    mode: IngestMode,
) -> Result<(EventTrace, IngestReport), DatasetError> {
    load_trace_bytes_observed(bytes, mode, &interlag_obs::DISABLED)
}

/// [`load_trace_bytes`] with telemetry: salvage-dropped lines are counted
/// into `rec`.
///
/// # Errors
///
/// As for [`load_trace_bytes`].
pub fn load_trace_bytes_observed(
    bytes: &[u8],
    mode: IngestMode,
    rec: &Recorder,
) -> Result<(EventTrace, IngestReport), DatasetError> {
    let mut report = IngestReport::default();
    let text: std::borrow::Cow<'_, str> = match mode {
        IngestMode::Strict => match std::str::from_utf8(bytes) {
            Ok(t) => t.into(),
            Err(e) => return Err(DatasetError::BadUtf8 { offset: e.valid_up_to() }),
        },
        IngestMode::Salvage => String::from_utf8_lossy(bytes),
    };
    let mut trace = EventTrace::new();
    for (i, line) in text.lines().enumerate() {
        match parse_getevent_line(line) {
            Ok(Some(event)) => trace.push(event),
            Ok(None) => {}
            Err(reason) => match mode {
                IngestMode::Strict => {
                    return Err(DatasetError::Trace { line: i + 1, reason });
                }
                IngestMode::Salvage => {
                    report.dropped_trace_lines += 1;
                    rec.count(Counter::SalvageDroppedLines, 1);
                    report.note(format!("trace line {}: {reason}", i + 1));
                }
            },
        }
    }
    if trace.is_empty() {
        return Err(DatasetError::EmptyTrace);
    }
    Ok((trace, report))
}

/// Loads an annotation database from JSON text and validates every mask
/// against its referenced ending frame.
///
/// A mask whose excluded rectangle reaches outside the annotation's image
/// was drawn against a different frame geometry; matching under it would
/// silently compare the wrong pixels. Strict mode rejects the database on
/// the first such annotation; salvage mode drops the offenders (the
/// matcher then reports those interactions as unannotated, which is
/// honest) and counts them.
///
/// # Errors
///
/// [`DatasetError::AnnotationDb`] when the JSON does not parse in either
/// mode; [`DatasetError::MaskOutOfBounds`] in strict mode.
pub fn load_annotation_db(
    json: &str,
    mode: IngestMode,
) -> Result<(AnnotationDb, IngestReport), DatasetError> {
    let db: AnnotationDb = serde_json::from_str(json)
        .map_err(|e| DatasetError::AnnotationDb { reason: e.to_string() })?;
    validate_annotation_db(db, mode)
}

/// The mask-vs-frame validation half of [`load_annotation_db`], usable on
/// databases that arrived by other means.
///
/// # Errors
///
/// [`DatasetError::MaskOutOfBounds`] in strict mode.
pub fn validate_annotation_db(
    db: AnnotationDb,
    mode: IngestMode,
) -> Result<(AnnotationDb, IngestReport), DatasetError> {
    let mut report = IngestReport::default();
    let mut clean = AnnotationDb::new(db.workload.clone());
    for ann in db.iter() {
        match ann.oversized_mask_rect() {
            None => clean.insert(ann.clone()),
            Some(rect) => {
                let err = mask_error(ann.interaction_id, rect, ann.image.bounds());
                match mode {
                    IngestMode::Strict => return Err(err),
                    IngestMode::Salvage => {
                        report.dropped_annotations += 1;
                        report.note(err.to_string());
                    }
                }
            }
        }
    }
    Ok((clean, report))
}

fn mask_error(interaction_id: usize, rect: Rect, frame: Rect) -> DatasetError {
    DatasetError::MaskOutOfBounds {
        interaction_id,
        rect_x1: rect.x1,
        rect_y1: rect.y1,
        frame_width: frame.x1,
        frame_height: frame.y1,
    }
}

/// Loads a video stream from manifest text.
///
/// Strict mode surfaces the first defective line with its number; salvage
/// mode drops defective frame/timestamp directives (a missing header or
/// period is fatal in both modes — without them nothing is decodable).
///
/// # Errors
///
/// [`DatasetError::Manifest`] with the line and defect.
pub fn load_manifest(
    text: &str,
    mode: IngestMode,
) -> Result<(VideoStream, IngestReport), DatasetError> {
    match mode {
        IngestMode::Strict => {
            let stream = parse_manifest(text)?;
            Ok((stream, IngestReport::default()))
        }
        IngestMode::Salvage => {
            let salvaged = parse_manifest_salvage(text)?;
            let mut report = IngestReport {
                dropped_manifest_lines: salvaged.dropped.len(),
                ..Default::default()
            };
            for e in &salvaged.dropped {
                report.note(format!("manifest: {e}"));
            }
            Ok((salvaged.stream, report))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::LagAnnotation;
    use interlag_evdev::time::SimDuration;
    use interlag_video::frame::FrameBuffer;
    use interlag_video::mask::{Mask, MatchTolerance};

    const GOOD: &str = "[     1.000000 ] /dev/input/event2: 0003 0039 0000002a\n\
                        [     1.000100 ] /dev/input/event2: 0000 0000 00000000\n";

    #[test]
    fn clean_trace_loads_in_both_modes() {
        for mode in [IngestMode::Strict, IngestMode::Salvage] {
            let (trace, report) = load_trace_bytes(GOOD.as_bytes(), mode).expect("clean");
            assert_eq!(trace.len(), 2);
            assert!(report.is_clean());
        }
    }

    #[test]
    fn strict_mode_reports_the_line_of_the_first_defect() {
        let text = format!("{GOOD}this is not a getevent line\n");
        let err = load_trace_bytes(text.as_bytes(), IngestMode::Strict).unwrap_err();
        match err {
            DatasetError::Trace { line, .. } => assert_eq!(line, 3),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn salvage_mode_drops_and_counts_bad_lines() {
        let text = format!("garbage\n{GOOD}[ truncat");
        let (trace, report) = load_trace_bytes(text.as_bytes(), IngestMode::Salvage).expect("ok");
        assert_eq!(trace.len(), 2);
        assert_eq!(report.dropped_trace_lines, 2);
        assert!(!report.is_clean());
        assert_eq!(report.notes.len(), 2);
    }

    #[test]
    fn bad_utf8_is_an_offset_error_in_strict_mode_only() {
        let mut bytes = GOOD.as_bytes().to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let err = load_trace_bytes(&bytes, IngestMode::Strict).unwrap_err();
        assert_eq!(err, DatasetError::BadUtf8 { offset: GOOD.len() });
        // Salvage replaces the bad bytes and drops the mangled line.
        let (trace, _) = load_trace_bytes(&bytes, IngestMode::Salvage).expect("salvaged");
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn truncation_at_every_byte_offset_never_panics() {
        let text = format!("{GOOD}[     2.000000 ] /dev/input/event2: 0001 014a 00000001\n");
        let bytes = text.as_bytes();
        for cut in 0..bytes.len() {
            // Strict either parses a prefix or reports a typed error.
            let _ = load_trace_bytes(&bytes[..cut], IngestMode::Strict);
            // Salvage only fails when nothing survives.
            match load_trace_bytes(&bytes[..cut], IngestMode::Salvage) {
                Ok((trace, _)) => assert!(!trace.is_empty()),
                Err(e) => assert_eq!(e, DatasetError::EmptyTrace, "cut at {cut}"),
            }
        }
    }

    #[test]
    fn empty_trace_is_corrupt_in_either_mode() {
        for mode in [IngestMode::Strict, IngestMode::Salvage] {
            assert_eq!(load_trace_bytes(b"", mode).unwrap_err(), DatasetError::EmptyTrace);
            assert_eq!(
                load_trace_bytes(b"# only a comment\n", mode).unwrap_err(),
                DatasetError::EmptyTrace
            );
        }
    }

    fn annotation_with_mask(id: usize, mask: Mask) -> LagAnnotation {
        LagAnnotation {
            interaction_id: id,
            image: FrameBuffer::new(8, 8),
            mask,
            tolerance: MatchTolerance::EXACT,
            occurrence: 1,
            threshold: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn oversized_mask_is_rejected_in_strict_mode() {
        // Regression: a mask one pixel taller than its 8x8 frame.
        let mut db = AnnotationDb::new("t");
        db.insert(annotation_with_mask(0, Mask::new()));
        db.insert(annotation_with_mask(3, Mask::new().with_excluded(Rect::new(0, 0, 8, 9))));
        let err = validate_annotation_db(db, IngestMode::Strict).unwrap_err();
        match err {
            DatasetError::MaskOutOfBounds { interaction_id, rect_y1, frame_height, .. } => {
                assert_eq!(interaction_id, 3);
                assert_eq!(rect_y1, 9);
                assert_eq!(frame_height, 8);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn oversized_mask_is_dropped_in_salvage_mode() {
        let mut db = AnnotationDb::new("t");
        db.insert(annotation_with_mask(0, Mask::new()));
        db.insert(annotation_with_mask(3, Mask::new().with_excluded(Rect::new(0, 0, 9, 8))));
        let (clean, report) = validate_annotation_db(db, IngestMode::Salvage).expect("salvaged");
        assert_eq!(clean.len(), 1);
        assert!(clean.get(0).is_some());
        assert!(clean.get(3).is_none());
        assert_eq!(report.dropped_annotations, 1);
    }

    #[test]
    fn exactly_fitting_mask_passes_validation() {
        let mut db = AnnotationDb::new("t");
        db.insert(annotation_with_mask(0, Mask::new().with_excluded(Rect::new(0, 0, 8, 8))));
        let (clean, report) = validate_annotation_db(db, IngestMode::Strict).expect("fits");
        assert_eq!(clean.len(), 1);
        assert!(report.is_clean());
    }

    #[test]
    fn annotation_db_json_round_trips_through_the_loader() {
        let mut db = AnnotationDb::new("t");
        db.insert(annotation_with_mask(1, Mask::new()));
        let json = serde_json::to_string(&db).expect("serialise");
        let (loaded, report) = load_annotation_db(&json, IngestMode::Strict).expect("load");
        assert_eq!(loaded, db);
        assert!(report.is_clean());
        assert!(matches!(
            load_annotation_db("{ not json", IngestMode::Strict).unwrap_err(),
            DatasetError::AnnotationDb { .. }
        ));
    }

    #[test]
    fn manifest_loader_respects_the_mode() {
        let text = "interlag-video-manifest v1\nperiod_us 33333\n\
                    frame a 4x4 00000000000000aa\nat 0 a\nat nonsense a\n";
        assert!(matches!(
            load_manifest(text, IngestMode::Strict).unwrap_err(),
            DatasetError::Manifest(_)
        ));
        let (stream, report) = load_manifest(text, IngestMode::Salvage).expect("salvaged");
        assert_eq!(stream.len(), 1);
        assert_eq!(report.dropped_manifest_lines, 1);
    }

    #[test]
    fn reports_merge_and_cap_their_notes() {
        let mut a = IngestReport::default();
        for i in 0..30 {
            a.dropped_trace_lines += 1;
            a.note(format!("line {i}"));
        }
        assert_eq!(a.notes.len(), MAX_NOTES);
        let mut b = IngestReport { dropped_annotations: 2, ..Default::default() };
        b.merge(a.clone());
        assert_eq!(b.total_dropped(), 32);
        assert_eq!(b.notes.len(), MAX_NOTES);
    }
}
