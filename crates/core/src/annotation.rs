//! Annotation: building the image database of expected lag endings
//! (§II-A Part A, Figure 4).
//!
//! Annotating a workload happens **once**: a reference execution is
//! captured, the suggester proposes candidate ending frames for every
//! interaction lag, and an annotator picks the right one per lag. The
//! picked image — with its mask burned in, plus a match tolerance and an
//! occurrence count for endings that look like the beginning — goes into
//! the [`AnnotationDb`] that every later markup run uses.
//!
//! The paper's annotator is a human taking a couple of seconds per lag;
//! here the [`FramePicker`] trait plays that role. The default
//! [`GroundTruthPicker`] uses the simulator's privileged knowledge of the
//! true service time exactly the way the human uses their judgement of
//! "the system now looks done" — and tests verify the suggester actually
//! offered the frame the human would have picked.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use interlag_device::device::RunArtifacts;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_video::frame::FrameBuffer;
use interlag_video::mask::{Mask, MatchTolerance};
use interlag_video::stream::VideoStream;

use crate::suggester::{Suggester, Suggestion};

/// Everything the matcher needs to find one lag's ending in any video of
/// the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LagAnnotation {
    /// The interaction this annotation belongs to.
    pub interaction_id: usize,
    /// The expected ending image, with the mask burned in.
    pub image: FrameBuffer,
    /// Regions to ignore when matching (clock, ads, cursor).
    pub mask: Mask,
    /// Per-pixel and pixel-count tolerances for matching.
    pub tolerance: MatchTolerance,
    /// Which match-run counts as the ending (1 = first time the image
    /// appears; 2 = the ending looks like the beginning, §II-E).
    pub occurrence: u32,
    /// The irritation threshold chosen at annotation time (from the HCI
    /// category of the interaction; experiments may override it with the
    /// 110 %-of-fastest rule).
    pub threshold: SimDuration,
}

impl LagAnnotation {
    /// The first excluded mask rectangle that reaches outside the
    /// annotation's ending frame, if any. A non-`None` answer means the
    /// mask was drawn against a different frame geometry than the image it
    /// is stored with — matching under it would silently ignore the wrong
    /// pixels, so ingestion rejects (or drops) such annotations.
    pub fn oversized_mask_rect(&self) -> Option<interlag_video::frame::Rect> {
        let (w, h) = (self.image.width(), self.image.height());
        self.mask.excluded().iter().copied().find(|r| r.x1 > w || r.y1 > h)
    }
}

/// The annotation database of one workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnnotationDb {
    /// Name of the annotated workload.
    pub workload: String,
    annotations: BTreeMap<usize, LagAnnotation>,
}

impl AnnotationDb {
    /// Creates an empty database for `workload`.
    pub fn new(workload: impl Into<String>) -> Self {
        AnnotationDb { workload: workload.into(), annotations: BTreeMap::new() }
    }

    /// Adds or replaces one lag's annotation.
    pub fn insert(&mut self, annotation: LagAnnotation) {
        self.annotations.insert(annotation.interaction_id, annotation);
    }

    /// The annotation of interaction `id`.
    pub fn get(&self, id: usize) -> Option<&LagAnnotation> {
        self.annotations.get(&id)
    }

    /// All annotations, ordered by interaction id.
    pub fn iter(&self) -> impl Iterator<Item = &LagAnnotation> {
        self.annotations.values()
    }

    /// Number of annotated lags.
    pub fn len(&self) -> usize {
        self.annotations.len()
    }

    /// `true` if nothing is annotated yet.
    pub fn is_empty(&self) -> bool {
        self.annotations.is_empty()
    }
}

/// The role of the human in Part A: pick the correct ending frame among
/// the suggestions for one lag.
pub trait FramePicker {
    /// Chooses one of `suggestions` (returning its index in the slice),
    /// or `None` if none of them is the ending (the lag is then left
    /// unannotated). `interaction_id` identifies the lag being annotated.
    fn pick(&self, interaction_id: usize, suggestions: &[Suggestion]) -> Option<usize>;
}

/// Simulates the human annotator with the simulator's ground truth: picks
/// the earliest suggestion at or after the true service time (the frame
/// where "the system now looks like it has serviced the input").
#[derive(Debug, Clone)]
pub struct GroundTruthPicker {
    service_times: BTreeMap<usize, SimTime>,
}

impl GroundTruthPicker {
    /// Builds the picker from a reference run's interaction log.
    pub fn new(run: &RunArtifacts) -> Self {
        let service_times =
            run.interactions.iter().filter_map(|r| r.service_time.map(|t| (r.id, t))).collect();
        GroundTruthPicker { service_times }
    }
}

impl FramePicker for GroundTruthPicker {
    fn pick(&self, interaction_id: usize, suggestions: &[Suggestion]) -> Option<usize> {
        let service = *self.service_times.get(&interaction_id)?;
        suggestions.iter().position(|s| s.time >= service)
    }
}

/// Always picks the last suggestion: a cheap heuristic annotator used to
/// show what happens when no ground truth (or human) is available.
#[derive(Debug, Clone, Copy, Default)]
pub struct LastSuggestionPicker;

impl FramePicker for LastSuggestionPicker {
    fn pick(&self, _interaction_id: usize, suggestions: &[Suggestion]) -> Option<usize> {
        if suggestions.is_empty() {
            None
        } else {
            Some(suggestions.len() - 1)
        }
    }
}

/// Statistics of one annotation session — the numbers behind the paper's
/// "factor 20 fewer frames to look at" claim (§II-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AnnotationStats {
    /// Lags that were annotated.
    pub annotated: usize,
    /// Lags where the picker rejected every suggestion.
    pub unannotated: usize,
    /// Total frames in all lag windows (the manual-markup burden).
    pub frames_in_windows: u64,
    /// Total suggestions shown to the picker.
    pub suggestions_shown: u64,
}

impl AnnotationStats {
    /// The reduction factor in frames a human must look at.
    pub fn reduction_factor(&self) -> f64 {
        if self.suggestions_shown == 0 {
            0.0
        } else {
            self.frames_in_windows as f64 / self.suggestions_shown as f64
        }
    }
}

/// Runs Part A: annotates every non-spurious interaction of a reference
/// run.
///
/// `mask`/`tolerance` become part of each stored annotation; the
/// occurrence count is derived automatically by counting how many times
/// the picked image already appeared between the input and the picked
/// frame (this is what the paper's user specifies by hand for
/// "ending-looks-like-beginning" lags).
///
/// # Panics
///
/// Panics if the reference run carries no video.
pub fn annotate(
    run: &RunArtifacts,
    suggester: &Suggester,
    picker: &dyn FramePicker,
    mask: &Mask,
    tolerance: MatchTolerance,
    workload_name: &str,
) -> (AnnotationDb, AnnotationStats) {
    let video = run.video.as_ref().expect("annotation needs a captured video");
    let mut db = AnnotationDb::new(workload_name);
    let mut stats = AnnotationStats::default();

    let lag_beginnings = run.lag_beginnings();
    for (idx, &(id, input_time)) in lag_beginnings.iter().enumerate() {
        // The suggestion window runs to the next input (or capture end).
        let window_end = lag_beginnings
            .get(idx + 1)
            .map(|&(_, t)| t)
            .unwrap_or(SimTime::ZERO + run.end_time.saturating_since(SimTime::ZERO));

        let suggestions = suggester.suggest(video, input_time, window_end);
        stats.frames_in_windows += suggester.frames_in_window(video, input_time, window_end) as u64;
        stats.suggestions_shown += suggestions.len() as u64;

        let Some(pick) = picker.pick(id, &suggestions) else {
            stats.unannotated += 1;
            continue;
        };
        let picked = suggestions[pick];

        // Store the image with the mask burned in.
        let mut image = (*video.frames()[picked.frame_index as usize].buf).clone();
        mask.apply(&mut image);

        // Derive the occurrence: count match-runs of the picked image from
        // the lag beginning through the picked frame.
        let occurrence =
            count_occurrences(video, input_time, picked.frame_index, &image, mask, tolerance);

        let category = run
            .interactions
            .get(id)
            .map(|r| r.category)
            .unwrap_or(interlag_device::script::InteractionCategory::SimpleFrequent);

        db.insert(LagAnnotation {
            interaction_id: id,
            image,
            mask: mask.clone(),
            tolerance,
            occurrence,
            threshold: category.threshold(),
        });
        stats.annotated += 1;
    }
    (db, stats)
}

/// Counts match-runs of `image` in the frames from `from_time` up to and
/// including frame `through_index`. A run of consecutive matching frames
/// counts once.
fn count_occurrences(
    video: &VideoStream,
    from_time: SimTime,
    through_index: u32,
    image: &FrameBuffer,
    mask: &Mask,
    tolerance: MatchTolerance,
) -> u32 {
    let first = video.first_frame_at_or_after(from_time);
    let mut occurrences = 0u32;
    let mut in_match = false;
    let compiled = mask.compile(image.width(), image.height());
    // Still periods share one buffer allocation: remember the previous
    // frame's pointer and verdict so a run of identical frames costs one
    // comparison total.
    let mut last: Option<(*const FrameBuffer, bool)> = None;
    for frame in &video.frames()[first as usize..=through_index as usize] {
        let key = std::sync::Arc::as_ptr(&frame.buf);
        let matches = match last {
            Some((prev, verdict)) if prev == key => verdict,
            _ => tolerance.matches_compiled(&compiled, image, &frame.buf),
        };
        last = Some((key, matches));
        if matches && !in_match {
            occurrences += 1;
        }
        in_match = matches;
    }
    occurrences.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suggester::SuggesterConfig;
    use interlag_evdev::time::SimDuration;
    use interlag_video::stream::FRAME_PERIOD_30FPS;
    use std::sync::Arc;

    fn frame(v: u8) -> Arc<FrameBuffer> {
        let mut f = FrameBuffer::new(8, 8);
        f.fill(v);
        Arc::new(f)
    }

    fn video_of(pattern: &str) -> VideoStream {
        let mut v = VideoStream::new(FRAME_PERIOD_30FPS);
        for (i, c) in pattern.chars().enumerate() {
            v.push(SimTime::from_micros(i as u64 * 33_333), frame(c as u8)).unwrap();
        }
        v
    }

    #[test]
    fn occurrence_counting_runs_not_frames() {
        // Pattern a a b b a a: image `a`, from start through last index →
        // two runs of `a`.
        let v = video_of("aabbaa");
        let mut img = FrameBuffer::new(8, 8);
        img.fill(b'a');
        let n = count_occurrences(&v, SimTime::ZERO, 5, &img, &Mask::new(), MatchTolerance::EXACT);
        assert_eq!(n, 2);
        // Through index 1 (still inside the first run): one.
        let n = count_occurrences(&v, SimTime::ZERO, 1, &img, &Mask::new(), MatchTolerance::EXACT);
        assert_eq!(n, 1);
    }

    #[test]
    fn last_suggestion_picker() {
        let picker = LastSuggestionPicker;
        assert_eq!(picker.pick(0, &[]), None);
        let s = Suggestion { frame_index: 3, time: SimTime::ZERO, still_run: 2 };
        let t = Suggestion { frame_index: 7, time: SimTime::ZERO, still_run: 2 };
        assert_eq!(picker.pick(0, &[s, t]), Some(1));
    }

    #[test]
    fn annotation_db_clone_and_lookup() {
        let mut db = AnnotationDb::new("wl");
        db.insert(LagAnnotation {
            interaction_id: 4,
            image: FrameBuffer::new(4, 4),
            mask: Mask::status_bar(4, 1),
            tolerance: MatchTolerance::EXACT,
            occurrence: 2,
            threshold: SimDuration::from_secs(1),
        });
        let copy = db.clone();
        assert_eq!(copy, db);
        assert_eq!(db.len(), 1);
        assert!(db.get(4).is_some());
        assert!(db.get(5).is_none());
    }

    #[test]
    fn stats_reduction_factor() {
        let stats = AnnotationStats {
            annotated: 10,
            unannotated: 0,
            frames_in_windows: 2_000,
            suggestions_shown: 100,
        };
        assert!((stats.reduction_factor() - 20.0).abs() < 1e-9);
        assert_eq!(AnnotationStats::default().reduction_factor(), 0.0);
    }

    #[test]
    fn suggester_config_is_usable_here() {
        // Smoke-test the plumbing between suggester and annotation types.
        let s = Suggester::new(SuggesterConfig::default());
        let v = video_of("aabb");
        let sug = s.suggest(&v, SimTime::ZERO, SimTime::from_secs(1));
        assert_eq!(sug.len(), 1);
    }
}
