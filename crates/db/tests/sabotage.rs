//! Adversarial ingest tests: forged, foreign, torn and duplicated
//! artifacts must be refused with typed errors, copied to quarantine,
//! counted — and must never perturb the aggregates by a single byte.

use std::collections::BTreeMap;
use std::path::PathBuf;

use interlag_core::checkpoint::{encode_checkpoint_binary, CheckpointFormat, CheckpointRecord};
use interlag_core::experiment::{RepOutcome, RepResult};
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_db::{
    export_csv, seal_submission, submission_id, Db, IngestError, SubmissionManifest,
    SUBMISSION_SCHEMA,
};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_journal::{encode_record, encode_record_binary};
use interlag_obs::{Counter, Recorder};

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-dbsab-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn result_with(energy_mj: f64) -> RepResult {
    let mut profile = LagProfile::new("ondemand");
    profile.push(LagEntry {
        interaction_id: 0,
        input_time: SimTime::from_micros(0),
        lag: SimDuration::from_millis(42),
        threshold: SimDuration::from_millis(150),
        confidence: 1.0,
    });
    RepResult {
        profile,
        dynamic_energy_mj: energy_mj,
        irritation: SimDuration::from_millis(10),
        match_failures: 0,
        input_faults: 0,
    }
}

fn manifest(fingerprint: u64) -> SubmissionManifest {
    SubmissionManifest {
        schema: SUBMISSION_SCHEMA.to_string(),
        fingerprint,
        device_model: "sim14".to_string(),
        workload: "synthetic".to_string(),
        reps: 2,
        configs: vec!["ondemand".to_string(), "oracle".to_string()],
        records: 0,
        props: Vec::new(),
    }
}

/// A well-formed two-record submission for fingerprint `fp`.
fn valid_submission(fp: u64) -> Vec<u8> {
    let mut records = BTreeMap::new();
    for config in 0..2usize {
        let record = CheckpointRecord::new(
            fp,
            config,
            0,
            &result_with(1_000.0 + config as f64),
            &RepOutcome::Ok,
        );
        records.insert((config, 0u32), record);
    }
    seal_submission(&manifest(fp), &records, CheckpointFormat::Binary)
}

/// Hand-frames an artifact from a manifest and raw records, bypassing
/// [`seal_submission`]'s count stamping and slot dedup — the forger's
/// toolkit.
fn forged(manifest: &SubmissionManifest, records: &[CheckpointRecord]) -> Vec<u8> {
    let json = serde_json::to_string(manifest).unwrap();
    let mut out = encode_record(json.as_bytes()).unwrap();
    for record in records {
        out.extend(encode_record_binary(&encode_checkpoint_binary(record)));
    }
    out
}

/// Opens a db, folds one good submission, then asserts that ingesting
/// `artifact` fails with an error matching `check`, lands in quarantine,
/// and leaves the exported report untouched.
fn assert_quarantined(tag: &str, artifact: &[u8], check: impl Fn(&IngestError) -> bool) {
    let dir = temp_db(tag);
    let obs = Recorder::enabled();
    let mut db = Db::open(&dir, obs.clone()).expect("open");
    db.ingest_bytes(&valid_submission(7)).expect("the control submission is valid");
    let before = export_csv(&db);
    let state_before = std::fs::read(dir.join("aggregates.db")).unwrap();

    let err = db.ingest_bytes(artifact).expect_err("sabotaged artifact must be refused");
    assert!(check(&err), "{tag}: wrong rejection: {err}");

    // Typed, quarantined, counted — and the fold is untouched.
    let q = dir.join("quarantine").join(format!("{:016x}.sub", submission_id(artifact)));
    assert_eq!(std::fs::read(&q).unwrap(), artifact, "{tag}: quarantine keeps the exact bytes");
    assert_eq!(export_csv(&db), before, "{tag}: rejected artifact leaked into the aggregates");
    assert_eq!(
        std::fs::read(dir.join("aggregates.db")).unwrap(),
        state_before,
        "{tag}: rejected artifact perturbed the persisted state"
    );
    let report = obs.text_report_deterministic();
    assert!(
        report.contains(&format!("| {} | 1 |", Counter::DbSubmissionsQuarantined.name())),
        "{tag}: quarantine counter missing:\n{report}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_artifact_is_quarantined() {
    let mut bytes = valid_submission(11);
    bytes.truncate(bytes.len() - 7); // tear the last frame mid-payload
    assert_quarantined(
        "torn",
        &bytes,
        |e| matches!(e, IngestError::TornArtifact { torn } if *torn > 0),
    );
}

#[test]
fn flipped_byte_is_quarantined() {
    let mut bytes = valid_submission(13);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // silent bit-rot in a record frame: CRC catches it
    assert_quarantined("flip", &bytes, |e| {
        matches!(e, IngestError::TornArtifact { .. } | IngestError::UndecodableRecord { .. })
    });
}

#[test]
fn foreign_fingerprint_records_are_quarantined() {
    // Records minted under fingerprint 99 smuggled under a manifest
    // claiming fingerprint 23.
    let smuggled = vec![CheckpointRecord::new(99, 0, 0, &result_with(500.0), &RepOutcome::Ok)];
    let mut m = manifest(23);
    m.records = 1;
    let bytes = forged(&m, &smuggled);
    assert_quarantined("foreign", &bytes, |e| matches!(e, IngestError::ForeignRecord { index: 0 }));
}

#[test]
fn wrong_schema_is_quarantined() {
    let mut m = manifest(29);
    m.schema = "interlag-db-submission/v999".to_string();
    m.records = 1;
    let bytes =
        forged(&m, &[CheckpointRecord::new(29, 0, 0, &result_with(500.0), &RepOutcome::Ok)]);
    assert_quarantined(
        "schema",
        &bytes,
        |e| matches!(e, IngestError::WrongSchema { found } if found.ends_with("/v999")),
    );
}

#[test]
fn record_count_mismatch_is_quarantined() {
    let mut m = manifest(31);
    m.records = 5; // claims five, ships one
    let bytes =
        forged(&m, &[CheckpointRecord::new(31, 0, 0, &result_with(500.0), &RepOutcome::Ok)]);
    assert_quarantined("count", &bytes, |e| {
        matches!(e, IngestError::RecordCountMismatch { declared: 5, found: 1 })
    });
}

#[test]
fn unassigned_slots_are_quarantined() {
    // config index 6 with only two configs declared, and a rep beyond
    // the declared rep count: both are outside the assignment.
    for (tag, config, rep) in [("config", 6usize, 0u32), ("rep", 0usize, 9u32)] {
        let mut m = manifest(37);
        m.records = 1;
        let bytes = forged(
            &m,
            &[CheckpointRecord::new(37, config, rep, &result_with(500.0), &RepOutcome::Ok)],
        );
        assert_quarantined(&format!("unassigned-{tag}"), &bytes, |e| {
            matches!(e, IngestError::UnassignedRecord { index: 0 })
        });
    }
}

#[test]
fn duplicate_slots_are_quarantined() {
    let record = CheckpointRecord::new(41, 0, 0, &result_with(500.0), &RepOutcome::Ok);
    let mut m = manifest(41);
    m.records = 2;
    let bytes = forged(&m, &[record.clone(), record]);
    assert_quarantined("dupslot", &bytes, |e| matches!(e, IngestError::DuplicateSlot { index: 1 }));
}

#[test]
fn non_finite_energy_is_quarantined() {
    for (tag, mj) in [("nan", f64::NAN), ("inf", f64::INFINITY), ("neg", -4.0)] {
        let mut m = manifest(43);
        m.records = 1;
        let bytes =
            forged(&m, &[CheckpointRecord::new(43, 0, 0, &result_with(mj), &RepOutcome::Ok)]);
        assert_quarantined(&format!("energy-{tag}"), &bytes, |e| {
            matches!(e, IngestError::BadMeasurement { index: 0 })
        });
    }
}

#[test]
fn garbage_manifest_is_quarantined() {
    let mut bytes = encode_record(b"{\"this is\": \"not a manifest\"}").unwrap();
    bytes.extend(encode_record_binary(&encode_checkpoint_binary(&CheckpointRecord::new(
        47,
        0,
        0,
        &result_with(500.0),
        &RepOutcome::Ok,
    ))));
    assert_quarantined("garbage", &bytes, |e| matches!(e, IngestError::BadManifest));
}

#[test]
fn empty_artifact_is_quarantined() {
    assert_quarantined("empty", &[], |e| matches!(e, IngestError::MissingManifest));
}

#[test]
fn duplicate_resubmission_is_refused_but_not_quarantined() {
    let dir = temp_db("dup");
    let obs = Recorder::enabled();
    let mut db = Db::open(&dir, obs.clone()).expect("open");
    let bytes = valid_submission(53);
    let receipt = db.ingest_bytes(&bytes).expect("first ingest folds");
    let before = export_csv(&db);
    let state_before = std::fs::read(dir.join("aggregates.db")).unwrap();

    let err = db.ingest_bytes(&bytes).expect_err("resubmission must be refused");
    assert!(
        matches!(&err, IngestError::DuplicateSubmission { id } if *id == receipt.id),
        "wrong rejection: {err}"
    );
    // Refused — but the bytes are already stored, so nothing is
    // quarantined and nothing double-counts.
    assert_eq!(export_csv(&db), before, "duplicate must not double-fold");
    assert_eq!(std::fs::read(dir.join("aggregates.db")).unwrap(), state_before);
    assert_eq!(
        std::fs::read_dir(dir.join("quarantine")).unwrap().count(),
        0,
        "duplicates are not quarantined"
    );
    let report = obs.text_report_deterministic();
    assert!(report.contains(&format!("| {} | 1 |", Counter::DbDuplicateSubmissions.name())));
    assert!(report.contains(&format!("| {} | 0 |", Counter::DbSubmissionsQuarantined.name())));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same duplicate is still refused by a *reopened* database — the
/// ingested-id set survives persistence.
#[test]
fn duplicate_detection_survives_reopen() {
    let dir = temp_db("dup-reopen");
    let bytes = valid_submission(59);
    {
        let mut db = Db::open(&dir, Recorder::disabled()).expect("open");
        db.ingest_bytes(&bytes).expect("first ingest folds");
    }
    let mut db = Db::open(&dir, Recorder::disabled()).expect("reopen");
    let err = db.ingest_bytes(&bytes).expect_err("reopened db still refuses duplicates");
    assert!(matches!(err, IngestError::DuplicateSubmission { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}
