//! Merge-algebra property tests: the database fold is order-independent,
//! associative, and byte-stable — any permutation of the same submission
//! set, and any partition of the same sample set, produces byte-identical
//! aggregates and exports.

use std::collections::BTreeMap;
use std::path::PathBuf;

use proptest::prelude::*;

use interlag_core::checkpoint::{CheckpointFormat, CheckpointRecord};
use interlag_core::experiment::{RepOutcome, RepResult};
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_db::{
    export_csv, export_markdown, seal_submission, Db, Sketch, SubmissionManifest, SUBMISSION_SCHEMA,
};
use interlag_evdev::time::{SimDuration, SimTime};

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-dbalg-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic synthetic measured repetition: lags and energy are
/// pure functions of the seed.
fn synthetic_result(config: &str, seed: u64) -> RepResult {
    let mut profile = LagProfile::new(config);
    let lags = 1 + (seed % 4);
    for i in 0..lags {
        let us = 30_000 + (seed.wrapping_mul(2_654_435_761).rotate_left(i as u32) % 900_000);
        profile.push(LagEntry {
            interaction_id: i as usize,
            input_time: SimTime::from_micros(i * 1_000_000),
            lag: SimDuration::from_micros(us),
            threshold: SimDuration::from_millis(150),
            confidence: 1.0,
        });
    }
    RepResult {
        profile,
        dynamic_energy_mj: 900.0 + (seed % 700) as f64 + (seed % 10) as f64 * 0.125,
        irritation: SimDuration::from_micros(seed % 400_000),
        match_failures: 0,
        input_faults: 0,
    }
}

/// One sealed synthetic submission: `reps` repetitions of two configs,
/// everything derived from `(fingerprint, jitter)`.
fn synthetic_submission(fingerprint: u64, jitter: u64, reps: u32) -> Vec<u8> {
    let configs = ["ondemand", "oracle"];
    let mut records = BTreeMap::new();
    for (config, name) in configs.iter().enumerate() {
        for rep in 0..reps {
            let seed = fingerprint
                .wrapping_mul(31)
                .wrapping_add(jitter)
                .wrapping_mul(17)
                .wrapping_add((config as u64) << 32 | u64::from(rep));
            let record = CheckpointRecord::new(
                fingerprint,
                config,
                rep,
                &synthetic_result(name, seed),
                &RepOutcome::Ok,
            );
            records.insert((config, rep), record);
        }
    }
    let manifest = SubmissionManifest {
        schema: SUBMISSION_SCHEMA.to_string(),
        fingerprint,
        device_model: "sim14".to_string(),
        workload: "synthetic".to_string(),
        reps,
        configs: configs.iter().map(|c| c.to_string()).collect(),
        records: 0,
        props: vec![format!("jitter-us={jitter}"), format!("reps={reps}")],
    };
    seal_submission(&manifest, &records, CheckpointFormat::Binary)
}

/// Ingests `artifacts` in the given order into a fresh database and
/// returns both exports plus the persisted state bytes.
fn fold(tag: &str, artifacts: &[Vec<u8>], order: &[usize]) -> (String, String, Vec<u8>) {
    let dir = temp_db(tag);
    let mut db = Db::open(&dir, Default::default()).expect("open db");
    for &i in order {
        db.ingest_bytes(&artifacts[i]).expect("synthetic submissions are valid");
    }
    let state = std::fs::read(dir.join("aggregates.db")).expect("state persisted");
    let out = (export_csv(&db), export_markdown(&db), state);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

proptest! {
    /// Any permutation of the same submission set exports byte-identical
    /// reports and persists byte-identical aggregate state.
    #[test]
    fn fold_is_order_independent(
        count in 2usize..5,
        rotate in 1usize..4,
        seed in 1u64..1_000,
    ) {
        // Distinct submissions: different fingerprints and jitter props.
        let artifacts: Vec<Vec<u8>> = (0..count)
            .map(|i| synthetic_submission(seed + i as u64, 500 * (i as u64 + 1), 1 + (i as u32 % 2)))
            .collect();
        let identity: Vec<usize> = (0..count).collect();
        let mut rotated = identity.clone();
        rotated.rotate_left(rotate % count);
        let mut reversed = identity.clone();
        reversed.reverse();

        let (csv_a, md_a, state_a) = fold("a", &artifacts, &identity);
        let (csv_b, md_b, state_b) = fold("b", &artifacts, &rotated);
        let (csv_c, md_c, state_c) = fold("c", &artifacts, &reversed);
        prop_assert_eq!(&csv_a, &csv_b);
        prop_assert_eq!(&csv_a, &csv_c);
        prop_assert_eq!(&md_a, &md_b);
        prop_assert_eq!(&md_a, &md_c);
        prop_assert_eq!(&state_a, &state_b);
        prop_assert_eq!(&state_a, &state_c);
    }

    /// Submissions sharing a fingerprint and props fold into the same
    /// groups regardless of which artifact arrives first.
    #[test]
    fn overlapping_groups_merge_order_free(seed in 1u64..1_000) {
        // Same study (fingerprint, props), different rep counts: distinct
        // artifacts, same group keys.
        let a = synthetic_submission(seed, 1_500, 1);
        let b = synthetic_submission(seed, 1_500, 3);
        prop_assert_ne!(&a, &b, "distinct artifacts");
        let (csv_ab, _, state_ab) = fold("ab", &[a.clone(), b.clone()], &[0, 1]);
        let (csv_ba, _, state_ba) = fold("ba", &[a, b], &[1, 0]);
        prop_assert_eq!(&csv_ab, &csv_ba);
        prop_assert_eq!(&state_ab, &state_ba);
        prop_assert!(csv_ab.contains("jitter-us=1500"), "group key keeps residual props");
    }

    /// Sketch merging is associative and commutative over any partition
    /// of the same sample set — the algebra the whole database rests on.
    #[test]
    fn sketch_fold_is_partition_independent(
        samples in prop::collection::vec(0u64..2_000_000, 1..60),
        cut_a in 0usize..60,
        cut_b in 0usize..60,
    ) {
        let (cut_a, cut_b) = (cut_a % samples.len(), cut_b % samples.len());
        let (lo, hi) = (cut_a.min(cut_b), cut_a.max(cut_b));
        let mut whole = Sketch::new(1_000);
        samples.iter().for_each(|&v| whole.add(v));

        // Three-way partition, merged left-assoc and right-assoc.
        let parts = [&samples[..lo], &samples[lo..hi], &samples[hi..]];
        let sketches: Vec<Sketch> = parts
            .iter()
            .map(|part| {
                let mut s = Sketch::new(1_000);
                part.iter().for_each(|&v| s.add(v));
                s
            })
            .collect();
        let mut left = sketches[0].clone();
        left.merge(&sketches[1]);
        left.merge(&sketches[2]);
        let mut right = sketches[2].clone();
        right.merge(&sketches[1]);
        right.merge(&sketches[0]);
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(&right, &whole);
    }

    /// Reopening a database from its persisted state exports the same
    /// bytes as the live instance that wrote it.
    #[test]
    fn persisted_state_round_trips(seed in 1u64..500) {
        let dir = temp_db("reopen");
        let artifacts: Vec<Vec<u8>> =
            (0..3).map(|i| synthetic_submission(seed + i, 700 * (i + 1), 2)).collect();
        let live_csv = {
            let mut db = Db::open(&dir, Default::default()).expect("open");
            for a in &artifacts {
                db.ingest_bytes(a).expect("valid");
            }
            export_csv(&db)
        };
        let reopened = Db::open(&dir, Default::default()).expect("reopen");
        prop_assert_eq!(reopened.submissions(), 3);
        prop_assert_eq!(export_csv(&reopened), live_csv);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
