//! Golden snapshots of `db export`: the markdown and CSV reports for a
//! fixed synthetic fleet are committed under `tests/golden/` and must
//! not drift — across code changes *or* across ingest orders. Regenerate
//! intentionally with `UPDATE_GOLDEN=1 cargo test -p interlag-db`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use interlag_conformance::assert_matches_golden_at;
use interlag_core::checkpoint::{CheckpointFormat, CheckpointRecord};
use interlag_core::experiment::{RepOutcome, RepResult};
use interlag_core::profile::{LagEntry, LagProfile};
use interlag_db::{
    export_csv, export_markdown, seal_submission, Db, SubmissionManifest, SUBMISSION_SCHEMA,
};
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_obs::Recorder;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("interlag-dbgold-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fixed, fully deterministic repetition: every sample is a pure
/// function of `(config, rep, seed)`.
fn fixed_result(config: usize, rep: u32, seed: u64) -> RepResult {
    let name = ["ondemand", "oracle"][config];
    let mut profile = LagProfile::new(name);
    for i in 0..3u64 {
        let us =
            40_000 + 13_337 * (i + 1) * (config as u64 + 1) + 7_001 * u64::from(rep) + 997 * seed;
        profile.push(LagEntry {
            interaction_id: i as usize,
            input_time: SimTime::from_micros(i * 500_000),
            lag: SimDuration::from_micros(us),
            threshold: SimDuration::from_millis(150),
            confidence: 1.0,
        });
    }
    RepResult {
        profile,
        dynamic_energy_mj: 1_200.0 + 37.5 * (config as f64 + 1.0) + 11.25 * f64::from(rep),
        irritation: SimDuration::from_micros(120_000 + 9_000 * u64::from(rep) + 400 * seed),
        match_failures: 0,
        input_faults: 0,
    }
}

/// One sealed device submission: two governors × two reps.
fn fleet_submission(fingerprint: u64, seed: u64, jitter: u64) -> Vec<u8> {
    let mut records = BTreeMap::new();
    for config in 0..2usize {
        for rep in 0..2u32 {
            records.insert(
                (config, rep),
                CheckpointRecord::new(
                    fingerprint,
                    config,
                    rep,
                    &fixed_result(config, rep, seed),
                    &RepOutcome::Ok,
                ),
            );
        }
    }
    let manifest = SubmissionManifest {
        schema: SUBMISSION_SCHEMA.to_string(),
        fingerprint,
        device_model: "sim14".to_string(),
        workload: "scroll".to_string(),
        reps: 2,
        configs: vec!["ondemand".to_string(), "oracle".to_string()],
        records: 0,
        props: vec![format!("jitter-us={jitter}"), "reps=2".to_string()],
    };
    seal_submission(&manifest, &records, CheckpointFormat::Binary)
}

/// The fixed three-device fleet every snapshot in this file is built
/// from.
fn fleet() -> Vec<Vec<u8>> {
    vec![
        fleet_submission(0x1001, 1, 1_000),
        fleet_submission(0x1002, 2, 1_000),
        fleet_submission(0x1003, 3, 2_500),
    ]
}

fn exports_for_order(tag: &str, order: &[usize]) -> (String, String) {
    let artifacts = fleet();
    let dir = temp_db(tag);
    let mut db = Db::open(&dir, Recorder::disabled()).expect("open");
    for &i in order {
        db.ingest_bytes(&artifacts[i]).expect("fleet submissions are valid");
    }
    let out = (export_markdown(&db), export_csv(&db));
    let _ = std::fs::remove_dir_all(&dir);
    out
}

#[test]
fn exports_match_their_goldens_in_every_ingest_order() {
    let (markdown, csv) = exports_for_order("fwd", &[0, 1, 2]);
    assert_matches_golden_at(&golden_dir(), "fleet_export.md", &markdown);
    assert_matches_golden_at(&golden_dir(), "fleet_export.csv", &csv);

    // Every other arrival order must hit the *same* snapshots — the
    // goldens double as the order-independence pin.
    for (tag, order) in [("rev", [2, 1, 0]), ("mid", [1, 2, 0])] {
        let (md, c) = exports_for_order(tag, &order);
        assert_matches_golden_at(&golden_dir(), "fleet_export.md", &md);
        assert_matches_golden_at(&golden_dir(), "fleet_export.csv", &c);
    }
}
