//! # interlag-db — the fleet-scale QoE results database
//!
//! The aggregation half of the fleet story (the orchestration half is
//! `interlag-orchestrator`): any number of machines run `interlag sweep`
//! or `interlag study`, seal their merged journals into submission
//! artifacts, and hand them to a database that validates each one
//! through the same gauntlet the sweep merge uses, then folds the
//! survivors into queryable per-`(device, governor, workload)` QoE
//! aggregates — in the mould of resctl-demo's iocost-database, for lag
//! percentiles instead of iocost parameters.
//!
//! * [`manifest`] — sealed submission artifacts: CRC-framed manifest +
//!   checkpoint records;
//! * [`store`] — the content-addressed store and ingest gauntlet
//!   (validate → quarantine or fold → persist);
//! * [`sketch`] — integer-exact mergeable aggregates, the algebra that
//!   makes every fold order produce identical bytes;
//! * [`query`] — property-group queries and Markdown/CSV export.
//!
//! The load-bearing invariant, proven by the merge-algebra property
//! tests: for any submission set, any ingest order and any partition
//! into intermediate databases, the exported report is byte-identical.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod manifest;
pub mod query;
pub mod sketch;
pub mod store;

pub use manifest::{device_model, seal_submission, SubmissionManifest, SUBMISSION_SCHEMA};
pub use query::{export_csv, export_markdown, query, QueryError, STATS};
pub use sketch::Sketch;
pub use store::{
    submission_id, Db, GroupAggregate, GroupKey, IngestError, IngestReceipt, ENERGY_BUCKET_UJ,
    IRRITATION_BUCKET_US, LAG_BUCKET_US,
};
