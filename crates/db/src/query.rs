//! Querying and exporting the aggregate database.
//!
//! Queries reuse the property-group grammar: `interlag db query
//! governor=ondemand:device=sim14:stat=p95-lag` filters the aggregate
//! groups by the reserved keys (`device`, `governor`, `workload` — each
//! may list several accepted values) and any residual key (matched
//! against the group's property bindings), then renders the requested
//! `stat`(s) for every surviving group in key order. Exports render the
//! whole database as Markdown or CSV with a fixed column set; both walk
//! the ordered group map, so their bytes are as order-independent as the
//! aggregates themselves.

use std::fmt::Write as _;

use interlag_core::propgroup::{PropError, PropGroup};

use crate::store::{Db, GroupAggregate, GroupKey};

/// Every statistic a query can ask for, with its render unit.
pub const STATS: [&str; 12] = [
    "mean-lag",
    "p50-lag",
    "p90-lag",
    "p95-lag",
    "p99-lag",
    "stddev-lag",
    "lags",
    "mean-irritation",
    "p95-irritation",
    "mean-energy",
    "reps",
    "degraded",
];

/// A rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The property group itself did not parse or expand.
    Prop(PropError),
    /// `stat=` named something outside [`STATS`].
    UnknownStat(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Prop(e) => write!(f, "bad query group: {e}"),
            QueryError::UnknownStat(s) => {
                write!(f, "unknown stat {s:?} (one of {})", STATS.join(", "))
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PropError> for QueryError {
    fn from(e: PropError) -> Self {
        QueryError::Prop(e)
    }
}

/// Renders one statistic of one group, unit suffix included.
fn render_stat(stat: &str, agg: &GroupAggregate) -> String {
    let ms = |us: f64| format!("{:.3}ms", us / 1_000.0);
    match stat {
        "mean-lag" => ms(agg.lag.mean()),
        "p50-lag" => ms(agg.lag.percentile(0.50) as f64),
        "p90-lag" => ms(agg.lag.percentile(0.90) as f64),
        "p95-lag" => ms(agg.lag.percentile(0.95) as f64),
        "p99-lag" => ms(agg.lag.percentile(0.99) as f64),
        "stddev-lag" => ms(agg.lag.stddev()),
        "lags" => agg.lag.count().to_string(),
        "mean-irritation" => ms(agg.irritation.mean()),
        "p95-irritation" => ms(agg.irritation.percentile(0.95) as f64),
        "mean-energy" => format!("{:.3}mJ", agg.energy.mean() / 1_000.0),
        "reps" => agg.reps.to_string(),
        "degraded" => agg.degraded.to_string(),
        _ => unreachable!("stats are validated before rendering"),
    }
}

/// `true` if the group key satisfies every filter in the query.
fn matches(key: &GroupKey, query: &PropGroup) -> bool {
    let bindings: Vec<&str> = key.props.split(':').filter(|s| !s.is_empty()).collect();
    for (filter, accepted) in query.pairs() {
        let ok = match filter.as_str() {
            "stat" => continue,
            "device" => accepted.contains(&key.device),
            "governor" | "config" => accepted.contains(&key.config),
            "workload" => accepted.contains(&key.workload),
            residual => {
                accepted.iter().any(|v| bindings.contains(&format!("{residual}={v}").as_str()))
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Runs one query: one output line per matching group, in key order —
/// the group's identity, then every requested stat. With no `stat=` key
/// every statistic is rendered.
pub fn query(db: &Db, text: &str) -> Result<String, QueryError> {
    let group: PropGroup = text.parse()?;
    let stats: Vec<String> = match group.get("stat") {
        Some(asked) => {
            for s in asked {
                if !STATS.contains(&s.as_str()) {
                    return Err(QueryError::UnknownStat(s.clone()));
                }
            }
            asked.to_vec()
        }
        None => STATS.iter().map(|s| s.to_string()).collect(),
    };
    let mut out = String::new();
    for (key, agg) in db.groups() {
        if !matches(key, &group) {
            continue;
        }
        let _ =
            write!(out, "device={}:governor={}:workload={}", key.device, key.config, key.workload);
        if !key.props.is_empty() {
            let _ = write!(out, ":{}", key.props);
        }
        for stat in &stats {
            let _ = write!(out, " {stat}={}", render_stat(stat, agg));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Escapes one CSV field (quotes fields containing separators).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The fixed export column set, shared by both renderers.
const COLUMNS: [&str; 16] = [
    "device",
    "config",
    "workload",
    "props",
    "reps",
    "degraded",
    "lags",
    "mean_lag_ms",
    "p50_lag_ms",
    "p90_lag_ms",
    "p95_lag_ms",
    "p99_lag_ms",
    "stddev_lag_ms",
    "mean_irritation_ms",
    "p95_irritation_ms",
    "mean_energy_mj",
];

fn row_values(key: &GroupKey, agg: &GroupAggregate) -> Vec<String> {
    let ms = |us: f64| format!("{:.3}", us / 1_000.0);
    vec![
        key.device.clone(),
        key.config.clone(),
        key.workload.clone(),
        key.props.clone(),
        agg.reps.to_string(),
        agg.degraded.to_string(),
        agg.lag.count().to_string(),
        ms(agg.lag.mean()),
        ms(agg.lag.percentile(0.50) as f64),
        ms(agg.lag.percentile(0.90) as f64),
        ms(agg.lag.percentile(0.95) as f64),
        ms(agg.lag.percentile(0.99) as f64),
        ms(agg.lag.stddev()),
        ms(agg.irritation.mean()),
        ms(agg.irritation.percentile(0.95) as f64),
        format!("{:.3}", agg.energy.mean() / 1_000.0),
    ]
}

/// The whole database as CSV, one row per group in key order.
pub fn export_csv(db: &Db) -> String {
    let mut out = COLUMNS.join(",");
    out.push('\n');
    for (key, agg) in db.groups() {
        let row: Vec<String> = row_values(key, agg).iter().map(|v| csv_field(v)).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// The whole database as a Markdown report.
pub fn export_markdown(db: &Db) -> String {
    let mut out = String::from("# QoE results database\n\n");
    let _ = writeln!(
        out,
        "{} submission(s) folded into {} group(s).\n",
        db.submissions(),
        db.groups().len()
    );
    let _ = writeln!(out, "| {} |", COLUMNS.join(" | "));
    let _ = writeln!(out, "|{}", " --- |".repeat(COLUMNS.len()));
    for (key, agg) in db.groups() {
        let _ = writeln!(out, "| {} |", row_values(key, agg).join(" | "));
    }
    out
}
