//! Querying and exporting the aggregate database.
//!
//! Queries reuse the property-group grammar: `interlag db query
//! governor=ondemand:device=sim14:stat=p95-lag` filters the aggregate
//! groups by the reserved keys (`device`, `governor`, `workload` — each
//! may list several accepted values) and any residual key (matched
//! against the group's property bindings), then renders the requested
//! `stat`(s) for every surviving group in key order. Exports render the
//! whole database as Markdown or CSV with a fixed column set; both walk
//! the ordered group map, so their bytes are as order-independent as the
//! aggregates themselves.

use std::fmt::Write as _;

use interlag_core::propgroup::{PropError, PropErrorKind, PropGroup};

use crate::store::{Db, GroupAggregate, GroupKey};

/// Every statistic a query can ask for, with its render unit. Beyond
/// this fixed set, any `p<N>-lag`, `p<N>-irritation` or `p<N>-energy`
/// with `1 <= N <= 100` names the corresponding percentile; an integer
/// `N` outside that domain is rejected with a byte-offset
/// [`PropError`] rather than silently clamped or aliased (the sketch's
/// quantile domain is `(0, 1]`).
pub const STATS: [&str; 12] = [
    "mean-lag",
    "p50-lag",
    "p90-lag",
    "p95-lag",
    "p99-lag",
    "stddev-lag",
    "lags",
    "mean-irritation",
    "p95-irritation",
    "mean-energy",
    "reps",
    "degraded",
];

/// A rejected query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The property group itself did not parse or expand.
    Prop(PropError),
    /// `stat=` named something outside [`STATS`].
    UnknownStat(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Prop(e) => write!(f, "bad query group: {e}"),
            QueryError::UnknownStat(s) => {
                write!(
                    f,
                    "unknown stat {s:?} (one of {}, or pN-lag/pN-irritation/pN-energy \
                     with 1 <= N <= 100)",
                    STATS.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PropError> for QueryError {
    fn from(e: PropError) -> Self {
        QueryError::Prop(e)
    }
}

/// The outcome of reading a `stat=` value as a `p<N>-metric` percentile:
/// `None` if it is not shaped like one, `Some(Err(()))` if `N` parsed
/// but lies outside `1..=100`, `Some(Ok((q, metric)))` otherwise.
fn percentile_stat(stat: &str) -> Option<Result<(f64, &str), ()>> {
    let rest = stat.strip_prefix('p')?;
    let (digits, metric) = rest.split_once('-')?;
    if !matches!(metric, "lag" | "irritation" | "energy") {
        return None;
    }
    let n: u64 = digits.parse().ok()?;
    if (1..=100).contains(&n) {
        Some(Ok((n as f64 / 100.0, metric)))
    } else {
        Some(Err(()))
    }
}

/// Renders one statistic of one group, unit suffix included.
fn render_stat(stat: &str, agg: &GroupAggregate) -> String {
    let ms = |us: f64| format!("{:.3}ms", us / 1_000.0);
    let mj = |uj: f64| format!("{:.3}mJ", uj / 1_000.0);
    match stat {
        "mean-lag" => ms(agg.lag.mean()),
        "stddev-lag" => ms(agg.lag.stddev()),
        "lags" => agg.lag.count().to_string(),
        "mean-irritation" => ms(agg.irritation.mean()),
        "mean-energy" => mj(agg.energy.mean()),
        "reps" => agg.reps.to_string(),
        "degraded" => agg.degraded.to_string(),
        _ => match percentile_stat(stat) {
            Some(Ok((q, "lag"))) => ms(agg.lag.percentile(q) as f64),
            Some(Ok((q, "irritation"))) => ms(agg.irritation.percentile(q) as f64),
            Some(Ok((q, "energy"))) => mj(agg.energy.percentile(q) as f64),
            _ => unreachable!("stats are validated before rendering"),
        },
    }
}

/// `true` if the group key satisfies every filter in the query.
fn matches(key: &GroupKey, query: &PropGroup) -> bool {
    let bindings: Vec<&str> = key.props.split(':').filter(|s| !s.is_empty()).collect();
    for (filter, accepted) in query.pairs() {
        let ok = match filter.as_str() {
            "stat" => continue,
            "device" => accepted.contains(&key.device),
            "governor" | "config" => accepted.contains(&key.config),
            "workload" => accepted.contains(&key.workload),
            residual => {
                accepted.iter().any(|v| bindings.contains(&format!("{residual}={v}").as_str()))
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

/// Runs one query: one output line per matching group, in key order —
/// the group's identity, then every requested stat. With no `stat=` key
/// every statistic is rendered.
pub fn query(db: &Db, text: &str) -> Result<String, QueryError> {
    let group: PropGroup = text.parse()?;
    let stats: Vec<String> = match group.get("stat") {
        Some(asked) => {
            for s in asked {
                if STATS.contains(&s.as_str()) {
                    continue;
                }
                match percentile_stat(s) {
                    Some(Ok(_)) => {}
                    // `pN-…` with N outside the sketch's (0, 1] quantile
                    // domain: reject with the value's byte offset.
                    Some(Err(())) => {
                        return Err(QueryError::Prop(PropError {
                            offset: group.offset_of_value("stat", s),
                            kind: PropErrorKind::OutOfDomain,
                        }));
                    }
                    None => return Err(QueryError::UnknownStat(s.clone())),
                }
            }
            asked.to_vec()
        }
        None => STATS.iter().map(|s| s.to_string()).collect(),
    };
    let mut out = String::new();
    for (key, agg) in db.groups() {
        if !matches(key, &group) {
            continue;
        }
        let _ =
            write!(out, "device={}:governor={}:workload={}", key.device, key.config, key.workload);
        if !key.props.is_empty() {
            let _ = write!(out, ":{}", key.props);
        }
        for stat in &stats {
            let _ = write!(out, " {stat}={}", render_stat(stat, agg));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Escapes one CSV field (quotes fields containing separators).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The fixed export column set, shared by both renderers.
const COLUMNS: [&str; 16] = [
    "device",
    "config",
    "workload",
    "props",
    "reps",
    "degraded",
    "lags",
    "mean_lag_ms",
    "p50_lag_ms",
    "p90_lag_ms",
    "p95_lag_ms",
    "p99_lag_ms",
    "stddev_lag_ms",
    "mean_irritation_ms",
    "p95_irritation_ms",
    "mean_energy_mj",
];

fn row_values(key: &GroupKey, agg: &GroupAggregate) -> Vec<String> {
    let ms = |us: f64| format!("{:.3}", us / 1_000.0);
    vec![
        key.device.clone(),
        key.config.clone(),
        key.workload.clone(),
        key.props.clone(),
        agg.reps.to_string(),
        agg.degraded.to_string(),
        agg.lag.count().to_string(),
        ms(agg.lag.mean()),
        ms(agg.lag.percentile(0.50) as f64),
        ms(agg.lag.percentile(0.90) as f64),
        ms(agg.lag.percentile(0.95) as f64),
        ms(agg.lag.percentile(0.99) as f64),
        ms(agg.lag.stddev()),
        ms(agg.irritation.mean()),
        ms(agg.irritation.percentile(0.95) as f64),
        format!("{:.3}", agg.energy.mean() / 1_000.0),
    ]
}

/// The whole database as CSV, one row per group in key order.
pub fn export_csv(db: &Db) -> String {
    let mut out = COLUMNS.join(",");
    out.push('\n');
    for (key, agg) in db.groups() {
        let row: Vec<String> = row_values(key, agg).iter().map(|v| csv_field(v)).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// The whole database as a Markdown report.
pub fn export_markdown(db: &Db) -> String {
    let mut out = String::from("# QoE results database\n\n");
    let _ = writeln!(
        out,
        "{} submission(s) folded into {} group(s).\n",
        db.submissions(),
        db.groups().len()
    );
    let _ = writeln!(out, "| {} |", COLUMNS.join(" | "));
    let _ = writeln!(out, "|{}", " --- |".repeat(COLUMNS.len()));
    for (key, agg) in db.groups() {
        let _ = writeln!(out, "| {} |", row_values(key, agg).join(" | "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_obs::Recorder;

    fn empty_db(tag: &str) -> (Db, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("interlag-query-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Db::open(&dir, Recorder::disabled()).expect("open"), dir)
    }

    #[test]
    fn percentile_stats_parse_and_respect_the_domain() {
        assert_eq!(percentile_stat("p50-lag"), Some(Ok((0.5, "lag"))));
        assert_eq!(percentile_stat("p1-irritation"), Some(Ok((0.01, "irritation"))));
        assert_eq!(percentile_stat("p100-energy"), Some(Ok((1.0, "energy"))));
        // Out of the sketch's (0, 1] quantile domain.
        assert_eq!(percentile_stat("p0-lag"), Some(Err(())));
        assert_eq!(percentile_stat("p101-lag"), Some(Err(())));
        assert_eq!(percentile_stat("p200-irritation"), Some(Err(())));
        // Not percentile-shaped at all.
        assert_eq!(percentile_stat("mean-lag"), None);
        assert_eq!(percentile_stat("p95-watts"), None);
        assert_eq!(percentile_stat("pxx-lag"), None);
    }

    #[test]
    fn out_of_domain_percentiles_are_rejected_with_byte_offsets() {
        let (db, dir) = empty_db("domain");
        // `stat` is the second pair; `p0-lag` is its second value.
        let err = query(&db, "governor=ondemand:stat=p95-lag,p0-lag").expect_err("out of domain");
        assert_eq!(
            err,
            QueryError::Prop(PropError { offset: 31, kind: PropErrorKind::OutOfDomain })
        );
        // Any in-domain N works, including ones outside the fixed set.
        assert!(query(&db, "governor=ondemand:stat=p73-lag,p100-energy").is_ok());
        // A non-integer suffix is still an unknown stat, not a domain error.
        let err = query(&db, "stat=p95-watts").expect_err("unknown");
        assert!(matches!(err, QueryError::UnknownStat(s) if s == "p95-watts"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
