//! The content-addressed submission store and its ingest gauntlet.
//!
//! [`Db::ingest_file`] runs every offered artifact through the same
//! gauntlet the sweep merge uses — CRC framing, manifest decode, declared
//! shape, checkpoint decode, version stamp, fingerprint, slot assignment
//! — before a single sample is believed. Artifacts that fail any stage
//! are *quarantined*: copied under `quarantine/`, counted, reported as a
//! typed [`IngestError`], and never folded (a rejected artifact leaves
//! the aggregates byte-identical). Accepted artifacts are stored under
//! `submissions/` by their content hash — resubmitting the same bytes is
//! detected and refused, so each submission folds exactly once — and
//! their measured repetitions fold into the [`Sketch`] aggregates of
//! their `(device-model, config, workload, props)` group.
//!
//! Because the sketches are integer-exact and the group map is ordered,
//! the persisted aggregate state and every export are byte-stable over
//! any ingest order of the same submission set.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use interlag_core::checkpoint::{decode_checkpoint_any, CHECKPOINT_VERSION};
use interlag_core::propgroup::PropPoint;
use interlag_core::wire::{R, W};
use interlag_journal::{atomic_write, decode_records, encode_record_binary};
use interlag_obs::{Counter, Recorder};

use crate::manifest::{SubmissionManifest, SUBMISSION_SCHEMA};
use crate::sketch::Sketch;

/// Schema stamp of the persisted aggregate state.
const AGGREGATES_SCHEMA: &str = "interlag-db-aggregates/v1";

/// Bucket width for lag sketches: 1 ms in microseconds. Public so
/// other sketch producers (the tuning sweep) fold at the database's
/// resolution and stay mergeable with it.
pub const LAG_BUCKET_US: u64 = 1_000;
/// Bucket width for irritation sketches: 10 ms in microseconds.
pub const IRRITATION_BUCKET_US: u64 = 10_000;
/// Bucket width for energy sketches: 1 mJ in microjoules.
pub const ENERGY_BUCKET_UJ: u64 = 1_000;

/// Grid-shape property keys excluded from group keys: how a fleet
/// member split its work must not fragment the aggregate a measurement
/// folds into.
const FLEET_SHAPE_KEYS: [&str; 2] = ["reps", "shards"];

/// The identity of one aggregate group: every measurement with the same
/// key folds into the same sketches.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupKey {
    /// Device model, e.g. `sim14`.
    pub device: String,
    /// Configuration name (`ondemand`, `fixed-0.96 GHz`, `oracle`, …).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Canonical residual property bindings (fleet-shape keys dropped),
    /// `""` when none.
    pub props: String,
}

/// The mergeable aggregate of one group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAggregate {
    /// Individual interaction lags, microseconds.
    pub lag: Sketch,
    /// Per-repetition total irritation, microseconds.
    pub irritation: Sketch,
    /// Per-repetition dynamic energy, microjoules.
    pub energy: Sketch,
    /// Measured repetitions folded in.
    pub reps: u64,
    /// Degraded repetitions seen (abandoned / timed out); counted, never
    /// folded into the sketches.
    pub degraded: u64,
}

impl Default for GroupAggregate {
    fn default() -> Self {
        GroupAggregate {
            lag: Sketch::new(LAG_BUCKET_US),
            irritation: Sketch::new(IRRITATION_BUCKET_US),
            energy: Sketch::new(ENERGY_BUCKET_UJ),
            reps: 0,
            degraded: 0,
        }
    }
}

impl GroupAggregate {
    /// Merges another group's aggregate in (the algebra behind
    /// partition-independence).
    pub fn merge(&mut self, other: &GroupAggregate) {
        self.lag.merge(&other.lag);
        self.irritation.merge(&other.irritation);
        self.energy.merge(&other.energy);
        self.reps += other.reps;
        self.degraded += other.degraded;
    }
}

/// Everything the ingest gauntlet can reject an artifact for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The artifact had torn or corrupt frames — some bytes were not
    /// covered by a valid CRC frame.
    TornArtifact {
        /// Torn fragments dropped by the framing decoder.
        torn: usize,
    },
    /// The artifact decoded to zero frames: no manifest to check
    /// anything against.
    MissingManifest,
    /// Frame 0 was not a [`SubmissionManifest`].
    BadManifest,
    /// Frame 0 carried a manifest with a different schema stamp.
    WrongSchema {
        /// The stamp found.
        found: String,
    },
    /// The number of record frames does not match the manifest's claim.
    RecordCountMismatch {
        /// Records the manifest declared.
        declared: u64,
        /// Record frames actually present.
        found: u64,
    },
    /// A record frame was not a decodable checkpoint of the supported
    /// version.
    UndecodableRecord {
        /// Zero-based record frame index.
        index: usize,
    },
    /// A record's study fingerprint differs from the manifest's — the
    /// artifact mixes results of a different study.
    ForeignRecord {
        /// Zero-based record frame index.
        index: usize,
    },
    /// A record claims a grid slot the manifest never declared.
    UnassignedRecord {
        /// Zero-based record frame index.
        index: usize,
    },
    /// Two record frames claim the same `(config, rep)` slot.
    DuplicateSlot {
        /// Zero-based record frame index of the second claimant.
        index: usize,
    },
    /// A measured record carried a non-finite or negative energy sample
    /// — unquantizable, so unfoldable.
    BadMeasurement {
        /// Zero-based record frame index.
        index: usize,
    },
    /// The identical artifact (by content hash) was already folded in.
    DuplicateSubmission {
        /// The content hash both copies share.
        id: u64,
    },
    /// The store could not read or write its own files.
    Io {
        /// The failing path.
        path: PathBuf,
        /// The OS error rendered.
        error: String,
    },
    /// The persisted aggregate state failed its own integrity checks.
    CorruptStore {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::TornArtifact { torn } => {
                write!(f, "torn artifact: {torn} corrupt frame fragment(s)")
            }
            IngestError::MissingManifest => write!(f, "artifact has no manifest frame"),
            IngestError::BadManifest => write!(f, "frame 0 is not a submission manifest"),
            IngestError::WrongSchema { found } => {
                write!(f, "unsupported manifest schema {found:?} (want {SUBMISSION_SCHEMA:?})")
            }
            IngestError::RecordCountMismatch { declared, found } => {
                write!(f, "manifest declares {declared} record(s) but {found} present")
            }
            IngestError::UndecodableRecord { index } => {
                write!(f, "record frame {index} is not a version-{CHECKPOINT_VERSION} checkpoint")
            }
            IngestError::ForeignRecord { index } => {
                write!(f, "record frame {index} carries a foreign study fingerprint")
            }
            IngestError::UnassignedRecord { index } => {
                write!(f, "record frame {index} claims a slot outside the declared grid")
            }
            IngestError::DuplicateSlot { index } => {
                write!(f, "record frame {index} claims an already-claimed slot")
            }
            IngestError::BadMeasurement { index } => {
                write!(f, "record frame {index} carries an unquantizable energy sample")
            }
            IngestError::DuplicateSubmission { id } => {
                write!(f, "submission {id:016x} already folded in")
            }
            IngestError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            IngestError::CorruptStore { detail } => write!(f, "corrupt aggregate store: {detail}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// What one accepted ingest did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The submission's content hash (its address in `submissions/`).
    pub id: u64,
    /// Measured repetitions folded into the aggregates.
    pub reps_folded: u64,
    /// Individual lag samples folded.
    pub lags_folded: u64,
    /// Degraded repetitions counted (not folded).
    pub degraded: u64,
}

/// The results database: persisted aggregates plus the submission /
/// quarantine object stores under one directory.
pub struct Db {
    dir: PathBuf,
    obs: Recorder,
    ingested: BTreeSet<u64>,
    groups: BTreeMap<GroupKey, GroupAggregate>,
}

/// FNV-1a over an artifact's bytes: the submission's content address.
pub fn submission_id(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Db {
    /// Opens (creating if needed) a database directory, loading any
    /// persisted aggregate state.
    pub fn open(dir: impl Into<PathBuf>, obs: Recorder) -> Result<Self, IngestError> {
        let dir = dir.into();
        for sub in ["submissions", "quarantine"] {
            let p = dir.join(sub);
            fs::create_dir_all(&p).map_err(|e| io_err(&p, &e))?;
        }
        let mut db = Db { dir, obs, ingested: BTreeSet::new(), groups: BTreeMap::new() };
        let state = db.state_path();
        if state.exists() {
            let bytes = fs::read(&state).map_err(|e| io_err(&state, &e))?;
            db.load_state(&bytes)?;
        }
        Ok(db)
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The aggregate groups, ordered by key.
    pub fn groups(&self) -> &BTreeMap<GroupKey, GroupAggregate> {
        &self.groups
    }

    /// Submissions folded in so far.
    pub fn submissions(&self) -> usize {
        self.ingested.len()
    }

    fn state_path(&self) -> PathBuf {
        self.dir.join("aggregates.db")
    }

    /// Ingests one sealed artifact file.
    pub fn ingest_file(&mut self, path: impl AsRef<Path>) -> Result<IngestReceipt, IngestError> {
        let path = path.as_ref();
        let bytes = fs::read(path).map_err(|e| io_err(path, &e))?;
        self.ingest_bytes(&bytes)
    }

    /// Ingests one sealed artifact from memory: the full gauntlet, then
    /// fold + persist, or quarantine + typed error.
    pub fn ingest_bytes(&mut self, bytes: &[u8]) -> Result<IngestReceipt, IngestError> {
        let id = submission_id(bytes);
        match self.gauntlet(id, bytes) {
            Ok(receipt) => {
                self.obs.count(Counter::DbSubmissionsIngested, 1);
                self.obs.count(Counter::DbRecordsFolded, receipt.reps_folded);
                Ok(receipt)
            }
            Err(IngestError::DuplicateSubmission { id }) => {
                // Not quarantined: the bytes are already in submissions/.
                self.obs.count(Counter::DbDuplicateSubmissions, 1);
                Err(IngestError::DuplicateSubmission { id })
            }
            Err(err) => {
                self.obs.count(Counter::DbSubmissionsQuarantined, 1);
                let q = self.dir.join("quarantine").join(format!("{id:016x}.sub"));
                atomic_write(&q, bytes).map_err(|e| io_err(&q, &e))?;
                Err(err)
            }
        }
    }

    /// The validate-fold-persist path; any `Err` means nothing was
    /// believed and the aggregates are untouched.
    fn gauntlet(&mut self, id: u64, bytes: &[u8]) -> Result<IngestReceipt, IngestError> {
        if self.ingested.contains(&id) {
            return Err(IngestError::DuplicateSubmission { id });
        }
        let decoded = decode_records(bytes);
        if decoded.torn > 0 {
            return Err(IngestError::TornArtifact { torn: decoded.torn });
        }
        let Some((manifest_frame, record_frames)) = decoded.records.split_first() else {
            return Err(IngestError::MissingManifest);
        };
        let manifest: SubmissionManifest = std::str::from_utf8(manifest_frame)
            .ok()
            .and_then(|text| serde_json::from_str(text).ok())
            .ok_or(IngestError::BadManifest)?;
        if manifest.schema != SUBMISSION_SCHEMA {
            return Err(IngestError::WrongSchema { found: manifest.schema });
        }
        if manifest.records != record_frames.len() as u64 {
            return Err(IngestError::RecordCountMismatch {
                declared: manifest.records,
                found: record_frames.len() as u64,
            });
        }

        // Stage the fold against a scratch map: either the whole artifact
        // folds, or none of it does.
        let mut staged: BTreeMap<GroupKey, GroupAggregate> = BTreeMap::new();
        let props = residual_props(&manifest.props);
        let mut receipt = IngestReceipt { id, reps_folded: 0, lags_folded: 0, degraded: 0 };
        let mut claimed: BTreeSet<(usize, u32)> = BTreeSet::new();
        for (index, frame) in record_frames.iter().enumerate() {
            let record =
                decode_checkpoint_any(frame).ok_or(IngestError::UndecodableRecord { index })?;
            if record.fingerprint != manifest.fingerprint {
                return Err(IngestError::ForeignRecord { index });
            }
            if record.config >= manifest.configs.len() || record.rep >= manifest.reps {
                return Err(IngestError::UnassignedRecord { index });
            }
            if !claimed.insert((record.config, record.rep)) {
                return Err(IngestError::DuplicateSlot { index });
            }
            let key = GroupKey {
                device: manifest.device_model.clone(),
                config: manifest.configs[record.config].clone(),
                workload: manifest.workload.clone(),
                props: props.clone(),
            };
            let group = staged.entry(key).or_default();
            let (_, _, result, outcome) = record.into_parts();
            if !outcome.is_measured() {
                group.degraded += 1;
                receipt.degraded += 1;
                continue;
            }
            let uj = result.dynamic_energy_mj * 1_000.0;
            if !uj.is_finite() || uj < 0.0 {
                return Err(IngestError::BadMeasurement { index });
            }
            group.energy.add(uj.round() as u64);
            group.irritation.add(result.irritation.as_micros());
            for entry in result.profile.entries() {
                group.lag.add(entry.lag.as_micros());
                receipt.lags_folded += 1;
            }
            group.reps += 1;
            receipt.reps_folded += 1;
        }

        // Commit: merge the staged groups, remember the id, store the
        // artifact, persist the state.
        for (key, agg) in staged {
            self.groups.entry(key).or_default().merge(&agg);
        }
        self.ingested.insert(id);
        let stored = self.dir.join("submissions").join(format!("{id:016x}.sub"));
        atomic_write(&stored, bytes).map_err(|e| io_err(&stored, &e))?;
        self.persist()?;
        Ok(receipt)
    }

    /// Writes the aggregate state: one CRC-framed wire payload, atomically
    /// replaced. BTreeMap iteration makes the bytes a pure function of the
    /// folded submission *set*.
    fn persist(&self) -> Result<(), IngestError> {
        let mut w = W::new();
        w.str(AGGREGATES_SCHEMA);
        w.u64(self.ingested.len() as u64);
        for &id in &self.ingested {
            w.u64(id);
        }
        w.u64(self.groups.len() as u64);
        for (key, agg) in &self.groups {
            w.str(&key.device);
            w.str(&key.config);
            w.str(&key.workload);
            w.str(&key.props);
            agg.lag.encode(&mut w);
            agg.irritation.encode(&mut w);
            agg.energy.encode(&mut w);
            w.u64(agg.reps);
            w.u64(agg.degraded);
        }
        let framed = encode_record_binary(&w.into_bytes());
        let path = self.state_path();
        atomic_write(&path, framed).map_err(|e| io_err(&path, &e))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), IngestError> {
        let corrupt = |detail: &str| IngestError::CorruptStore { detail: detail.to_string() };
        let decoded = decode_records(bytes);
        if decoded.torn > 0 || decoded.records.len() != 1 {
            return Err(corrupt("state is not exactly one intact frame"));
        }
        let payload = &decoded.records[0];
        let mut r = R::new(payload);
        let schema = r.str().ok_or_else(|| corrupt("missing schema"))?;
        if schema != AGGREGATES_SCHEMA {
            return Err(corrupt("unknown schema"));
        }
        let ids = r.u64().ok_or_else(|| corrupt("missing id count"))?;
        for _ in 0..ids {
            self.ingested.insert(r.u64().ok_or_else(|| corrupt("truncated ids"))?);
        }
        let groups = r.u64().ok_or_else(|| corrupt("missing group count"))?;
        for _ in 0..groups {
            let truncated = || corrupt("truncated group");
            let key = GroupKey {
                device: r.str().ok_or_else(truncated)?,
                config: r.str().ok_or_else(truncated)?,
                workload: r.str().ok_or_else(truncated)?,
                props: r.str().ok_or_else(truncated)?,
            };
            let agg = GroupAggregate {
                lag: Sketch::decode(&mut r).ok_or_else(truncated)?,
                irritation: Sketch::decode(&mut r).ok_or_else(truncated)?,
                energy: Sketch::decode(&mut r).ok_or_else(truncated)?,
                reps: r.u64().ok_or_else(truncated)?,
                degraded: r.u64().ok_or_else(truncated)?,
            };
            self.groups.insert(key, agg);
        }
        if !r.at_end() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// The canonical residual property string for group keys: fleet-shape
/// keys dropped, order preserved.
fn residual_props(props: &[String]) -> String {
    let pairs: Vec<(String, String)> = props
        .iter()
        .filter_map(|p| p.split_once('=').map(|(k, v)| (k.to_string(), v.to_string())))
        .collect();
    PropPoint::new(pairs).without(&FLEET_SHAPE_KEYS).to_string()
}

fn io_err(path: &Path, e: &std::io::Error) -> IngestError {
    IngestError::Io { path: path.to_path_buf(), error: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_props_drop_fleet_shape_keys() {
        let props =
            vec!["jitter-us=1500".to_string(), "reps=5".to_string(), "shards=8".to_string()];
        assert_eq!(residual_props(&props), "jitter-us=1500");
        assert_eq!(residual_props(&[]), "");
    }

    #[test]
    fn submission_ids_are_fnv1a() {
        assert_eq!(submission_id(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(submission_id(b"a"), submission_id(b"b"));
    }
}
