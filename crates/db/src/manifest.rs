//! Sealed submission artifacts: the unit of fleet result exchange.
//!
//! A *submission* is one self-describing file a fleet member hands to the
//! database: frame 0 is a JSON [`SubmissionManifest`] describing where
//! the results came from (device model, workload, grid shape, study
//! fingerprint, property bindings), and every following frame is one
//! checkpoint record exactly as the merge gauntlet encoded it. All
//! frames use the journal's CRC framing, so a torn or flipped artifact
//! is detected before any of it is believed, and the record frames are
//! byte-identical to the sweep's own `merged.*` journal — sealing adds
//! provenance, it never re-encodes results.

use std::collections::BTreeMap;

use interlag_core::checkpoint::{
    encode_checkpoint, encode_checkpoint_binary, CheckpointFormat, CheckpointRecord,
};
use interlag_core::experiment::LabConfig;
use serde::{Deserialize, Serialize};

/// The manifest schema stamp; ingest refuses anything else.
pub const SUBMISSION_SCHEMA: &str = "interlag-db-submission/v1";

/// Frame 0 of a sealed submission: provenance and the claim the record
/// frames are checked against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionManifest {
    /// Always [`SUBMISSION_SCHEMA`].
    pub schema: String,
    /// The study fingerprint every record frame must carry.
    pub fingerprint: u64,
    /// Device model key, e.g. `sim14` (see [`device_model`]).
    pub device_model: String,
    /// Workload name (the paper's app/interaction script).
    pub workload: String,
    /// Repetitions per configuration the grid was declared with.
    pub reps: u32,
    /// Configuration names in grid order; a record's `config` index must
    /// name one of these.
    pub configs: Vec<String>,
    /// Declared number of record frames; a mismatch means the artifact
    /// was truncated or padded after sealing.
    pub records: u64,
    /// Property-group bindings this run was swept under, as canonical
    /// `key=value` strings (fleet-shape keys like `reps` included; the
    /// database drops them from group keys at fold time).
    pub props: Vec<String>,
}

/// The stable device-model key for a lab configuration: the simulated
/// device family is characterised by its OPP table, so `sim{N}` for an
/// N-point table (the paper's Galaxy S III analogue is `sim14`).
pub fn device_model(lab: &LabConfig) -> String {
    format!("sim{}", lab.device.opps.len())
}

/// Seals a merged record map into one submission artifact: framed
/// manifest, then every record in slot order. The record frames are the
/// same bytes [`encode_merged`](interlag_core::checkpoint) framing
/// produces, so the artifact is byte-stable whenever the record map is.
pub fn seal_submission(
    manifest: &SubmissionManifest,
    records: &BTreeMap<(usize, u32), CheckpointRecord>,
    format: CheckpointFormat,
) -> Vec<u8> {
    let manifest = SubmissionManifest { records: records.len() as u64, ..manifest.clone() };
    let json = serde_json::to_string(&manifest).expect("manifests always serialise");
    let mut out =
        interlag_journal::encode_record(json.as_bytes()).expect("manifest JSON is line-safe");
    for record in records.values() {
        match format {
            CheckpointFormat::Json => out.extend(
                interlag_journal::encode_record(&encode_checkpoint(record))
                    .expect("checkpoint JSON is line-safe"),
            ),
            CheckpointFormat::Binary => out
                .extend(interlag_journal::encode_record_binary(&encode_checkpoint_binary(record))),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interlag_core::experiment::{placeholder_result, RepOutcome};
    use interlag_journal::decode_records;

    fn manifest() -> SubmissionManifest {
        SubmissionManifest {
            schema: SUBMISSION_SCHEMA.to_string(),
            fingerprint: 7,
            device_model: "sim14".to_string(),
            workload: "demo".to_string(),
            reps: 1,
            configs: vec!["ondemand".to_string(), "oracle".to_string()],
            records: 0,
            props: vec!["jitter-us=1500".to_string()],
        }
    }

    #[test]
    fn sealed_artifacts_decode_frame_by_frame() {
        let mut records = BTreeMap::new();
        for config in 0..2 {
            let r = CheckpointRecord::new(
                7,
                config,
                0,
                &placeholder_result("seal-test"),
                &RepOutcome::Ok,
            );
            records.insert((config, 0u32), r);
        }
        let bytes = seal_submission(&manifest(), &records, CheckpointFormat::Binary);
        let decoded = decode_records(&bytes);
        assert_eq!(decoded.torn, 0);
        assert_eq!(decoded.records.len(), 3, "manifest + 2 record frames");
        let text = std::str::from_utf8(&decoded.records[0]).expect("manifest is UTF-8");
        let m: SubmissionManifest = serde_json::from_str(text).expect("frame 0 is the manifest");
        assert_eq!(m.records, 2, "sealing stamps the real record count");
        assert_eq!(m.device_model, "sim14");
    }

    #[test]
    fn device_model_reflects_the_opp_table() {
        assert_eq!(device_model(&LabConfig::default()), "sim14");
    }
}
