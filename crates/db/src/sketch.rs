//! Mergeable sketch aggregates over integer-quantized measurements.
//!
//! The database's central algebraic requirement is that folding N
//! submissions is associative, commutative and *byte-stable*: any
//! permutation or partition of the same submission set must export the
//! identical report. Floating-point accumulation breaks that — addition
//! order leaks into the low bits — so a [`Sketch`] holds nothing but
//! integers: an exact count, an exact `u128` sum and sum of squares over
//! quantized units (microseconds, microjoules), and a fixed-width bucket
//! histogram for percentiles. Integer addition commutes exactly, so
//! merge order cannot leave a trace; floats appear only at render time,
//! derived from the same integers no matter how they were accumulated.

use std::collections::BTreeMap;

use interlag_core::wire::{R, W};

/// An exact, mergeable summary of one measured quantity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sketch {
    /// Histogram bucket width in quantized units; bucket `i` covers
    /// `[i*width, (i+1)*width)`.
    width: u64,
    /// Number of samples.
    count: u64,
    /// Exact sum of samples (u128: 2^64 samples of 2^64 units cannot
    /// overflow).
    sum: u128,
    /// Exact sum of squared samples.
    sum_sq: u128,
    /// Sparse fixed-width histogram: bucket index → sample count.
    hist: BTreeMap<u64, u64>,
}

impl Sketch {
    /// An empty sketch with the given bucket `width` (quantized units).
    pub fn new(width: u64) -> Self {
        Sketch { width: width.max(1), ..Self::default() }
    }

    /// Folds one sample in.
    pub fn add(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.sum_sq += u128::from(v) * u128::from(v);
        *self.hist.entry(v / self.width).or_insert(0) += 1;
    }

    /// Merges another sketch of the same width. Widths are fixed per
    /// metric at compile time, so a mismatch is a programming error.
    pub fn merge(&mut self, other: &Sketch) {
        assert_eq!(self.width, other.width, "merging sketches of different widths");
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        for (&bucket, &n) in &other.hist {
            *self.hist.entry(bucket).or_insert(0) += n;
        }
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples in quantized units. Consumers that must
    /// compare means without float rounding (the tuning sweep's Pareto
    /// frontier) cross-multiply these sums with counts instead of
    /// dividing.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean in quantized units (0 when empty). The only
    /// float division happens here, at render time, on order-free sums.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Population standard deviation in quantized units (0 when empty).
    pub fn stddev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        // E[x²] − E[x]², from exact integer sums.
        let var = (self.sum_sq as f64 / n) - (self.sum as f64 / n).powi(2);
        var.max(0.0).sqrt()
    }

    /// The `q`-quantile (`0 < q <= 1`) as the inclusive upper bound of the
    /// histogram bucket holding the sample of rank `ceil(q*count)`:
    /// a conservative estimate never below the true percentile, off by at
    /// most one bucket width. Returns 0 when empty.
    ///
    /// `q` must lie in `(0, 1]`: `q = 0` has no sample of rank 0 to name
    /// and `q > 1` would silently alias to the maximum, so both are
    /// programming errors, checked by `debug_assert`. Callers that accept
    /// quantiles from user input (the `db query` `stat=pN-…` keys) must
    /// validate the domain before calling.
    pub fn percentile(&self, q: f64) -> u64 {
        debug_assert!(q > 0.0 && q <= 1.0, "quantile {q} outside the (0, 1] domain");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&bucket, &n) in &self.hist {
            seen += n;
            if seen >= rank {
                return (bucket + 1) * self.width;
            }
        }
        unreachable!("histogram counts always sum to the sketch count")
    }

    /// Appends the sketch to a wire buffer.
    pub fn encode(&self, w: &mut W) {
        w.u64(self.width);
        w.u64(self.count);
        encode_u128(w, self.sum);
        encode_u128(w, self.sum_sq);
        w.u64(self.hist.len() as u64);
        for (&bucket, &n) in &self.hist {
            w.u64(bucket);
            w.u64(n);
        }
    }

    /// Reads a sketch back from a wire buffer.
    pub fn decode(r: &mut R<'_>) -> Option<Self> {
        let width = r.u64()?;
        let count = r.u64()?;
        let sum = decode_u128(r)?;
        let sum_sq = decode_u128(r)?;
        let buckets = r.u64()?;
        let mut hist = BTreeMap::new();
        for _ in 0..buckets {
            hist.insert(r.u64()?, r.u64()?);
        }
        Some(Sketch { width, count, sum, sum_sq, hist })
    }
}

fn encode_u128(w: &mut W, v: u128) {
    w.u64(v as u64);
    w.u64((v >> 64) as u64);
}

fn decode_u128(r: &mut R<'_>) -> Option<u128> {
    let lo = r.u64()?;
    let hi = r.u64()?;
    Some(u128::from(lo) | (u128::from(hi) << 64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_equals_sequential_fold() {
        let samples: Vec<u64> = (0..100).map(|i| i * 137 % 9_000).collect();
        let mut whole = Sketch::new(1_000);
        samples.iter().for_each(|&v| whole.add(v));
        let mut left = Sketch::new(1_000);
        let mut right = Sketch::new(1_000);
        samples[..37].iter().for_each(|&v| left.add(v));
        samples[37..].iter().for_each(|&v| right.add(v));
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, whole);
        // Commutes too.
        let mut flipped = right;
        flipped.merge(&left);
        assert_eq!(flipped, whole);
    }

    #[test]
    fn percentile_is_a_bucket_upper_bound() {
        let mut s = Sketch::new(1_000);
        for v in [100, 200, 1_500, 2_500, 9_999] {
            s.add(v);
        }
        assert_eq!(s.percentile(0.5), 2_000); // rank 3 = 1_500, bucket [1000,2000)
        assert_eq!(s.percentile(1.0), 10_000);
        assert_eq!(s.percentile(0.01), 1_000);
        assert!(s.percentile(0.5) >= 1_500, "never below the true percentile");
    }

    #[test]
    fn stats_from_exact_sums() {
        let mut s = Sketch::new(10);
        [2u64, 4, 4, 4, 5, 5, 7, 9].iter().for_each(|&v| s.add(v));
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 2.0);
        assert_eq!(s.count(), 8);
        assert_eq!(Sketch::new(10).mean(), 0.0);
        assert_eq!(Sketch::new(10).percentile(0.5), 0);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let mut s = Sketch::new(1_000);
        (0..50).for_each(|i| s.add(i * 999));
        let mut w = W::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = R::new(&bytes);
        let back = Sketch::decode(&mut r).expect("decodes");
        assert!(r.at_end());
        assert_eq!(back, s);
    }
}
