//! Golden snapshot tests for `report.rs` over a full study of one oracle
//! scenario, pinned across worker counts.
//!
//! A compact 4-OPP table keeps the study (4 fixed configs + 3 governors +
//! oracle, 2 reps each) quick while exercising every report format. The
//! same study runs with `workers = 1` and `workers = 4`; the paper
//! pipeline is a pure function of its inputs, so both must render
//! byte-identical reports, which are then held against committed
//! snapshots under `tests/golden/`.
//!
//! Regenerate after an intentional format change with:
//! `UPDATE_GOLDEN=1 cargo test -p interlag-conformance`.

use interlag_conformance::{assert_matches_golden, ScenarioSpec};
use interlag_core::{
    oracle_csv, profile_csv, study_csv, study_markdown, Lab, LabConfig, StudyResult,
};
use interlag_device::InteractionCategory;
use interlag_evdev::time::SimDuration;
use interlag_power::opp::{Opp, OppTable};

/// A Krait-shaped but compact OPP table: floor, two middle steps, ceiling.
fn small_table() -> OppTable {
    OppTable::new(vec![
        Opp::new(300_000, 900),
        Opp::new(960_000, 975),
        Opp::new(1_497_600, 1_050),
        Opp::new(2_150_400, 1_125),
    ])
}

fn run_study(workers: usize) -> StudyResult {
    let spec = ScenarioSpec::wait(
        "golden-study",
        InteractionCategory::SimpleFrequent,
        SimDuration::from_millis(600),
    );
    spec.validate().unwrap_or_else(|e| panic!("{e}"));
    let mut sc = spec.build();
    sc.device.opps = small_table();
    let lab = Lab::new(LabConfig { device: sc.device, reps: 2, workers, ..LabConfig::default() });
    lab.study(&sc.workload).expect("study")
}

#[test]
fn study_reports_match_golden_at_any_worker_count() {
    let serial = run_study(1);
    let parallel = run_study(4);

    let first_fixed = &serial.fixed[0];
    let renders = [
        ("study.csv", study_csv(&serial), study_csv(&parallel)),
        ("study.md", study_markdown(&serial), study_markdown(&parallel)),
        ("profile.csv", profile_csv(first_fixed), profile_csv(&parallel.fixed[0])),
        ("oracle.csv", oracle_csv(&serial), oracle_csv(&parallel)),
    ];
    for (name, at_one, at_four) in &renders {
        assert_eq!(at_one, at_four, "{name}: workers=1 and workers=4 reports differ");
        assert_matches_golden(name, at_one);
    }
}
