//! The differential conformance suite: run the full `Lab` pipeline over
//! the oracle scenario matrix and assert stage-by-stage agreement with
//! each scenario's analytic [`GroundTruth`] manifest.
//!
//! Stages checked per scenario:
//!
//! 1. **Annotation** — the reference pass annotates every scripted
//!    interaction, with the occurrence count and threshold the manifest
//!    prescribes.
//! 2. **Device** — the simulator's own `true_lag` agrees with the
//!    analytic lag at the reference frequency.
//! 3. **Matcher** — a probe run at the scenario's mid-table frequency
//!    (fault-injected where the scenario says so) yields matcher-found
//!    lag endings within the tolerance policy of the true lags.
//! 4. **Irritation** — per-interaction penalties agree with the manifest
//!    (exactly zero where the manifest says zero).
//! 5. **Ranking** — compute-bound lags shrink monotonically with
//!    frequency; wait-bound lags do not move.

use interlag_conformance::{scenarios, Scenario, ScenarioSpec};
use interlag_core::{
    mark_up_with_policy, user_irritation, Lab, LabConfig, LagProfile, MatchPolicy, ThresholdModel,
};
use interlag_device::{FixedGovernor, Governor, InteractionCategory};
use interlag_evdev::replay::ReplayAgent;
use interlag_evdev::time::SimDuration;
use interlag_faults::{FaultStreams, FaultyCapture, FaultyGovernor, FaultyReplayer};
use interlag_governors::{
    Conservative, FrequencyPlan, Interactive, Ondemand, PlanGovernor, Schedutil,
};
use interlag_power::opp::Frequency;
use interlag_video::capture::HdmiCapture;

/// Builds the scenario's lab: same device, one repetition, serial sweep.
fn lab_for(sc: &Scenario) -> Lab {
    Lab::new(LabConfig { device: sc.device.clone(), reps: 1, workers: 1, ..LabConfig::default() })
}

/// Runs the scenario once at `freq` (honouring its fault plan) and marks
/// it up against `db`, returning the matched profile.
fn probe_profile(
    sc: &Scenario,
    lab: &Lab,
    db: &interlag_core::AnnotationDb,
    freq: Frequency,
) -> LagProfile {
    let trace = sc.workload.script.record_trace();
    let mut governor = FixedGovernor::new(freq);
    let run = match sc.faults {
        None => lab
            .run(&sc.workload, trace, &mut governor)
            .unwrap_or_else(|e| panic!("{}: probe run failed: {e}", sc.name)),
        Some(fc) => {
            let streams = FaultStreams::derive(fc.seed, 0, 0, 0);
            let replayer = FaultyReplayer::new(ReplayAgent::new(trace), fc.replay, streams.replay);
            let mut faulty = FaultyGovernor::new(&mut governor, fc.dvfs, streams.dvfs);
            let mut capture = FaultyCapture::new(HdmiCapture::new(), fc.capture, streams.capture);
            lab.device()
                .run_with_capture(
                    &sc.workload.script,
                    replayer,
                    &mut faulty,
                    sc.workload.run_until(),
                    &mut capture,
                )
                .unwrap_or_else(|e| panic!("{}: faulty probe run failed: {e}", sc.name))
        }
    };
    let video = run.video.as_ref().unwrap_or_else(|| panic!("{}: no video captured", sc.name));
    let (profile, failures) = mark_up_with_policy(
        video,
        &run.lag_beginnings(),
        db,
        sc.name,
        &MatchPolicy::paper_recovery(),
    );
    assert!(
        failures.is_empty(),
        "{}: matcher failed on interactions {:?}",
        sc.name,
        failures.iter().map(|(id, f)| format!("{id}: {f:?}")).collect::<Vec<_>>()
    );
    profile
}

/// The full per-scenario differential check (stages 1–4 above).
fn check(spec: &ScenarioSpec) {
    spec.validate().unwrap_or_else(|e| panic!("{e}"));
    let sc = spec.build();
    let lab = lab_for(&sc);
    let max_freq = sc.device.opps.max_freq();

    // Stage 1: annotation. Every scripted interaction is annotated, with
    // the manifest's occurrence and the category threshold.
    let (db, stats, reference) = lab
        .annotate_workload(&sc.workload)
        .unwrap_or_else(|e| panic!("{}: annotation failed: {e}", sc.name));
    assert_eq!(stats.annotated, spec.taps, "{}: not every interaction annotated", sc.name);
    assert_eq!(stats.unannotated, 0, "{}: unannotated interactions", sc.name);
    assert_eq!(db.len(), sc.truth.lags.len(), "{}: manifest/db size mismatch", sc.name);
    for truth in &sc.truth.lags {
        let ann = db.get(truth.interaction_id).unwrap_or_else(|| {
            panic!("{}: interaction {} not in db", sc.name, truth.interaction_id)
        });
        assert_eq!(
            ann.occurrence, truth.occurrence,
            "{}: interaction {} occurrence",
            sc.name, truth.interaction_id
        );
        assert_eq!(
            ann.threshold,
            truth.category.threshold(),
            "{}: interaction {} threshold",
            sc.name,
            truth.interaction_id
        );
    }

    // Stage 2: the device's own service-time bookkeeping matches the
    // analytic lag at the reference frequency.
    for truth in &sc.truth.lags {
        let rec = &reference.interactions[truth.interaction_id];
        let measured = rec.true_lag().unwrap_or_else(|| {
            panic!("{}: interaction {} never serviced", sc.name, truth.interaction_id)
        });
        let expected = truth.lag_at(max_freq);
        assert!(
            sc.tolerance.lag_agrees(expected, measured),
            "{}: device true_lag {} µs vs analytic {} µs (interaction {})",
            sc.name,
            measured.as_micros(),
            expected.as_micros(),
            truth.interaction_id
        );
    }

    // Stage 3: matcher-found lag endings at the probe frequency.
    let profile = probe_profile(&sc, &lab, &db, sc.probe);
    assert_eq!(profile.len(), sc.truth.lags.len(), "{}: profile size", sc.name);
    for truth in &sc.truth.lags {
        let measured = profile.lag_of(truth.interaction_id).unwrap_or_else(|| {
            panic!("{}: interaction {} unmatched", sc.name, truth.interaction_id)
        });
        let expected = truth.lag_at(sc.probe);
        assert!(
            sc.tolerance.lag_agrees(expected, measured),
            "{}: matched lag {} µs vs true {} µs (interaction {}, slack {} µs)",
            sc.name,
            measured.as_micros(),
            expected.as_micros(),
            truth.interaction_id,
            sc.tolerance.lag_slack.as_micros()
        );
    }

    // Stage 4: irritation penalties against the manifest.
    let report = user_irritation(&profile, &ThresholdModel::Annotated);
    assert_eq!(report.penalties.len(), sc.truth.penalties.len(), "{}: penalty count", sc.name);
    for (penalty, expected) in report.penalties.iter().zip(&sc.truth.penalties) {
        assert!(
            sc.tolerance.penalty_agrees(*expected, penalty.penalty),
            "{}: penalty {} µs vs expected {} µs (interaction {})",
            sc.name,
            penalty.penalty.as_micros(),
            expected.as_micros(),
            penalty.interaction_id
        );
    }
}

/// Looks up matrix entries by name, panicking on a stale list.
fn matrix_group(names: &[&str]) -> Vec<ScenarioSpec> {
    let all = scenarios();
    names
        .iter()
        .map(|n| {
            *all.iter()
                .find(|s| s.name == *n)
                .unwrap_or_else(|| panic!("scenario {n} missing from matrix"))
        })
        .collect()
}

#[test]
fn straddles_every_shneiderman_threshold() {
    for spec in matrix_group(&[
        "typing-below",
        "typing-above",
        "simple-below",
        "simple-above",
        "common-below",
        "common-above",
        "complex-below",
        "complex-above",
    ]) {
        check(&spec);
    }
}

#[test]
fn masked_endings_conform() {
    for spec in matrix_group(&[
        "typing-above-masked",
        "simple-below-masked",
        "common-above-masked",
        "complex-below-masked",
    ]) {
        check(&spec);
    }
}

#[test]
fn double_occurrence_endings_conform() {
    for spec in matrix_group(&[
        "occ2-typing-above",
        "occ2-simple-below",
        "occ2-simple-above",
        "occ2-common-below",
    ]) {
        check(&spec);
    }
}

#[test]
fn frame_rate_axis_conforms() {
    for spec in matrix_group(&[
        "fps60-simple-below",
        "fps60-typing-above",
        "fps15-simple-above",
        "fps15-common-below",
    ]) {
        check(&spec);
    }
}

#[test]
fn fault_injected_scenarios_conform() {
    for spec in matrix_group(&[
        "faulty-typing-above",
        "faulty-simple-above",
        "faulty-common-below",
        "faulty-occ2-simple-below",
    ]) {
        check(&spec);
    }
}

/// Compute-bound lags must shrink (weakly) as the clock rises, and by a
/// large margin across the whole table — the paper's core per-OPP
/// ordering claim, checked against analytic truth at all 14 OPPs.
#[test]
fn compute_ranking_is_faster_is_better() {
    let spec = matrix_group(&["ranking-compute"]).remove(0);
    let sc = spec.build();
    let lab = lab_for(&sc);
    let (db, _, _) = lab.annotate_workload(&sc.workload).expect("annotation");
    let truth = sc.truth.lags[0];

    let freqs: Vec<Frequency> = sc.device.opps.frequencies().collect();
    let mut lags = Vec::with_capacity(freqs.len());
    for &freq in &freqs {
        let profile = probe_profile(&sc, &lab, &db, freq);
        let measured = profile.lag_of(0).expect("matched lag");
        let expected = truth.lag_at(freq);
        assert!(
            sc.tolerance.lag_agrees(expected, measured),
            "ranking-compute at {freq}: measured {} µs vs true {} µs",
            measured.as_micros(),
            expected.as_micros()
        );
        lags.push(measured);
    }
    for pair in lags.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "ranking-compute: lag grew with frequency ({} -> {} µs)",
            pair[0].as_micros(),
            pair[1].as_micros()
        );
    }
    let spread = lags[0] - lags[lags.len() - 1];
    assert!(
        spread >= SimDuration::from_millis(300),
        "ranking-compute: min->max frequency only saved {} µs",
        spread.as_micros()
    );
}

/// Wait-bound lags must not move with the clock: the spread across the
/// table stays within one tolerance band.
#[test]
fn wait_ranking_is_frequency_independent() {
    let spec = matrix_group(&["ranking-wait"]).remove(0);
    let sc = spec.build();
    let lab = lab_for(&sc);
    let (db, _, _) = lab.annotate_workload(&sc.workload).expect("annotation");
    let truth = sc.truth.lags[0];

    let opps = &sc.device.opps;
    let mut lags = Vec::new();
    for freq in [opps.min_freq(), sc.probe, opps.max_freq()] {
        let profile = probe_profile(&sc, &lab, &db, freq);
        let measured = profile.lag_of(0).expect("matched lag");
        assert!(
            sc.tolerance.lag_agrees(truth.lag_at(freq), measured),
            "ranking-wait at {freq}: measured {} µs",
            measured.as_micros()
        );
        lags.push(measured);
    }
    let spread = *lags.iter().max().unwrap() - *lags.iter().min().unwrap();
    let band = sc.tolerance.lag_slack + sc.tolerance.early_slack;
    assert!(
        spread <= band,
        "ranking-wait: lag moved {} µs across the table (band {} µs)",
        spread.as_micros(),
        band.as_micros()
    );
}

/// A wait-bound truth holds under *any* governor: the four kernel models
/// and an arbitrary frequency plan all measure the same lag. This pins
/// the composition of governor plans into conformance scenarios.
#[test]
fn governors_cannot_change_wait_bound_truth() {
    let spec = ScenarioSpec::wait(
        "governor-wait",
        InteractionCategory::SimpleFrequent,
        SimDuration::from_millis(1_500),
    )
    .taps(1);
    spec.validate().unwrap_or_else(|e| panic!("{e}"));
    let sc = spec.build();
    let lab = lab_for(&sc);
    let (db, _, _) = lab.annotate_workload(&sc.workload).expect("annotation");
    let truth = sc.truth.lags[0];

    let opps = &sc.device.opps;
    let mut plan = FrequencyPlan::new(opps.min_freq());
    for (i, freq) in opps.frequencies().enumerate() {
        plan.set_from(
            interlag_evdev::time::SimTime::ZERO + SimDuration::from_millis(500 * i as u64),
            freq,
        );
    }
    let mut governors: Vec<Box<dyn Governor>> = vec![
        Box::new(Conservative::default()),
        Box::new(Interactive::for_table(opps)),
        Box::new(Ondemand::default()),
        Box::new(Schedutil::default()),
        Box::new(PlanGovernor::new("staircase-plan", plan)),
    ];
    for governor in &mut governors {
        let trace = sc.workload.script.record_trace();
        let run = lab.run(&sc.workload, trace, governor.as_mut()).expect("governor run");
        let video = run.video.as_ref().expect("video");
        let (profile, failures) = mark_up_with_policy(
            video,
            &run.lag_beginnings(),
            &db,
            sc.name,
            &MatchPolicy::paper_recovery(),
        );
        assert!(failures.is_empty(), "{}: match failures under {}", sc.name, run.governor_name);
        let measured = profile.lag_of(0).expect("matched lag");
        let expected = truth.lag_at(opps.max_freq());
        assert!(
            sc.tolerance.lag_agrees(expected, measured),
            "{}: governor {} measured {} µs vs wait-bound truth {} µs",
            sc.name,
            run.governor_name,
            measured.as_micros(),
            expected.as_micros()
        );
    }
}
