//! Per-cluster conformance oracles for the heterogeneous device.
//!
//! The single-cluster suite pins the simulator to analytic ground truth;
//! this file extends the same discipline to [`ClusterDevice`]:
//!
//! 1. **Compute-bound, pinned to big** — a pure-compute interaction
//!    pinned to the big cluster must service in `cycles / f_big` to
//!    within quantum rounding, for every big-cluster frequency, and the
//!    lag must shrink strictly monotonically as the big cluster speeds
//!    up while the LITTLE cluster's frequency is irrelevant.
//! 2. **Wait-bound on LITTLE** — an interaction dominated by an I/O wait
//!    executes on the efficiency cluster and its lag must not move with
//!    frequency at all (beyond quantum rounding).
//! 3. **Quiescent thermal transparency** — a single-cluster topology
//!    under a quiescent [`ThermalEnvelope`] is bit-identical to the
//!    plain [`Device`] baseline: same interactions, same activity trace.

use interlag_device::cluster::{ClusterDevice, ClusterDeviceConfig, ClusterTopology};
use interlag_device::device::{CaptureMode, Device, DeviceConfig};
use interlag_device::dvfs::FixedGovernor;
use interlag_device::scene::{Scene, SceneUpdate};
use interlag_device::script::{DeviceScript, InteractionCategory, InteractionSpec};
use interlag_device::task::{Phase, TaskSpec};
use interlag_evdev::gesture::Gesture;
use interlag_evdev::mt::Point;
use interlag_evdev::replay::ReplayAgent;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_faults::{ThermalEnvelope, ThermalFaults};
use interlag_governors::Interactive;
use interlag_power::opp::{Frequency, OppTable};

/// One tap driving a single response task.
fn one_tap_script(response: TaskSpec) -> DeviceScript {
    DeviceScript {
        interactions: vec![InteractionSpec {
            label: "probe".into(),
            start: SimTime::from_millis(500),
            gesture: Gesture::tap(Point::new(20, 30)),
            widget: Some(interlag_video::frame::Rect::new(10, 20, 30, 30)),
            response: Some(response),
            category: InteractionCategory::Common,
        }],
        background: Vec::new(),
        tick: None,
    }
}

/// Lag tolerance for analytic comparisons: the loop quantizes execution
/// to 1 ms quanta at both the dispatch and the service edge.
const QUANTUM_SLACK: SimDuration = SimDuration::from_millis(3);

fn close(measured: SimDuration, analytic: SimDuration) -> bool {
    let delta = measured.saturating_sub(analytic).max(analytic.saturating_sub(measured));
    delta <= QUANTUM_SLACK
}

#[test]
fn compute_bound_pinned_to_big_matches_the_analytic_lag() {
    const CYCLES: u64 = 200_000_000;
    let script = one_tap_script(TaskSpec::single(CYCLES, SceneUpdate::replace(Scene::new(7))));
    let trace = script.record_trace();
    let big_table = OppTable::snapdragon_8074();

    let mut lags = Vec::new();
    for opp in [big_table.opps()[0], big_table.opps()[6], big_table.opps()[13]] {
        let mut config = ClusterDeviceConfig::new(ClusterTopology::big_little());
        config.pins = vec![(0, 1)]; // the probe runs on the big cluster
        let device = ClusterDevice::new(config);
        let mut little = FixedGovernor::new(Frequency::from_mhz(300));
        let mut big = FixedGovernor::new(opp.freq);
        let run = device
            .run(
                &script,
                ReplayAgent::new(trace.clone()),
                &mut [&mut little, &mut big],
                SimTime::from_secs(4),
            )
            .expect("clean run");
        let lag = run.interactions[0].true_lag().expect("probe serviced");
        let analytic = opp.freq.time_for(CYCLES);
        assert!(close(lag, analytic), "big @ {}: measured {lag} vs analytic {analytic}", opp.freq,);
        lags.push(lag);
    }
    assert!(
        lags.windows(2).all(|w| w[0] > w[1]),
        "compute-bound lag must shrink with big-cluster frequency: {lags:?}"
    );
}

#[test]
fn compute_bound_on_big_ignores_the_little_frequency() {
    const CYCLES: u64 = 200_000_000;
    let script = one_tap_script(TaskSpec::single(CYCLES, SceneUpdate::replace(Scene::new(7))));
    let trace = script.record_trace();
    let little_table = OppTable::cortex_a7_little();

    let lag_at = |little_freq: Frequency| {
        let mut config = ClusterDeviceConfig::new(ClusterTopology::big_little());
        config.pins = vec![(0, 1)];
        let device = ClusterDevice::new(config);
        let mut little = FixedGovernor::new(little_freq);
        let mut big = FixedGovernor::new(Frequency::from_khz(2_150_400));
        let run = device
            .run(
                &script,
                ReplayAgent::new(trace.clone()),
                &mut [&mut little, &mut big],
                SimTime::from_secs(4),
            )
            .expect("clean run");
        run.interactions[0].true_lag().expect("probe serviced")
    };

    let slow = lag_at(little_table.min_freq());
    let fast = lag_at(little_table.max_freq());
    assert!(
        close(slow, fast),
        "a big-pinned probe must not see the LITTLE frequency: {slow} vs {fast}"
    );
}

#[test]
fn wait_bound_on_little_is_frequency_independent() {
    const WAIT: SimDuration = SimDuration::from_millis(300);
    let script = one_tap_script(TaskSpec::new(vec![Phase::with_wait(
        100_000,
        WAIT,
        SceneUpdate::replace(Scene::new(9)),
    )]));
    let trace = script.record_trace();
    let little_table = OppTable::cortex_a7_little();

    let mut lags = Vec::new();
    for freq in [little_table.min_freq(), Frequency::from_khz(652_800), little_table.max_freq()] {
        let device = ClusterDevice::new(ClusterDeviceConfig::new(ClusterTopology::big_little()));
        let mut little = FixedGovernor::new(freq);
        let mut big = FixedGovernor::new(Frequency::from_mhz(300));
        let run = device
            .run(
                &script,
                ReplayAgent::new(trace.clone()),
                &mut [&mut little, &mut big],
                SimTime::from_secs(4),
            )
            .expect("clean run");
        let lag = run.interactions[0].true_lag().expect("probe serviced");
        assert!(lag >= WAIT, "lag {lag} cannot undercut the scripted wait");
        lags.push(lag);
    }
    for pair in lags.windows(2) {
        assert!(
            close(pair[0], pair[1]),
            "wait-bound lag moved with the LITTLE frequency: {lags:?}"
        );
    }
}

#[test]
fn quiescent_thermal_off_is_bit_identical_to_the_single_cluster_baseline() {
    let script = one_tap_script(TaskSpec::single(120_000_000, SceneUpdate::replace(Scene::new(3))));
    let trace = script.record_trace();
    let until = SimTime::from_secs(4);
    let table = OppTable::snapdragon_8074();

    // Baseline: the plain device under a naked interactive governor.
    let device = Device::new(DeviceConfig { capture: CaptureMode::None, ..Default::default() });
    let mut naked = Interactive::for_table(&table);
    let baseline =
        device.run(&script, ReplayAgent::new(trace.clone()), &mut naked, until).expect("clean run");

    // Candidate: single-cluster topology, same governor wrapped in a
    // quiescent thermal envelope.
    let cluster =
        ClusterDevice::new(ClusterDeviceConfig::new(ClusterTopology::single(table.clone())));
    let mut inner = Interactive::for_table(&table);
    let mut envelope = ThermalEnvelope::new(&mut inner, ThermalFaults::quiescent());
    let run = cluster
        .run(&script, ReplayAgent::new(trace), &mut [&mut envelope], until)
        .expect("clean run");

    assert_eq!(run.interactions, baseline.interactions, "ground truth must not move");
    assert_eq!(run.activity.len(), 1);
    assert_eq!(run.activity[0], baseline.activity, "activity trace must be bit-identical");
    assert_eq!(run.migrations, 0);
    assert_eq!(envelope.trips(), 0, "a quiescent envelope never trips");
}
