//! Golden snapshot helpers for report output.
//!
//! Snapshots live under `tests/golden/` in this crate and are committed.
//! On mismatch the assertion prints the first differing line and a
//! one-line regeneration hint; setting `UPDATE_GOLDEN=1` rewrites the
//! snapshot instead of failing.

use std::fs;
use std::path::PathBuf;

/// The committed snapshot directory (`tests/golden/` in this crate).
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// The line number (1-based) and contents of the first difference between
/// two texts, or `None` if they are identical.
pub fn first_mismatch<'a>(expected: &'a str, actual: &'a str) -> Option<(usize, &'a str, &'a str)> {
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (exp.next(), act.next()) {
            (None, None) => return None,
            (e, a) if e == a => continue,
            (e, a) => return Some((line, e.unwrap_or("<eof>"), a.unwrap_or("<eof>"))),
        }
    }
}

/// Asserts that `actual` matches the committed snapshot `name`.
///
/// With `UPDATE_GOLDEN=1` in the environment the snapshot is (re)written
/// and the assertion passes. Otherwise a missing or differing snapshot
/// panics with the first differing line and the regeneration hint.
pub fn assert_matches_golden(name: &str, actual: &str) {
    assert_matches_golden_at(&golden_dir(), name, actual);
}

/// [`assert_matches_golden`] against an explicit snapshot directory, for
/// crates that keep their own `tests/golden/` (e.g. `interlag-db`'s
/// export snapshots). The regeneration hint names the directory so the
/// failure message stays actionable from any crate.
pub fn assert_matches_golden_at(dir: &std::path::Path, name: &str, actual: &str) {
    let path = dir.join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
        fs::write(&path, actual).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        return;
    }
    let expected = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "golden snapshot {} unreadable ({e}); regenerate with: UPDATE_GOLDEN=1 cargo test",
            path.display()
        ),
    };
    if let Some((line, exp, act)) = first_mismatch(&expected, actual) {
        panic!(
            "snapshot {name} differs at line {line}:\n  expected: {exp}\n  actual:   {act}\nregenerate with: UPDATE_GOLDEN=1 cargo test"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_have_no_mismatch() {
        assert_eq!(first_mismatch("a\nb\n", "a\nb\n"), None);
    }

    #[test]
    fn first_differing_line_is_reported() {
        assert_eq!(first_mismatch("a\nb\nc", "a\nx\nc"), Some((2, "b", "x")));
    }

    #[test]
    fn length_mismatch_is_a_mismatch() {
        assert_eq!(first_mismatch("a", "a\nb"), Some((2, "<eof>", "b")));
        assert_eq!(first_mismatch("a\nb", "a"), Some((2, "b", "<eof>")));
    }
}
