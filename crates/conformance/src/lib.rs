//! Ground-truth conformance harness for the interlag pipeline.
//!
//! The paper's measurement chain — record/replay, 30 fps capture,
//! suggester, matcher, irritation metric, governor study — is only
//! trustworthy if each stage can be checked against a known answer. This
//! crate provides that answer synthetically: [`scenario::ScenarioSpec`]
//! expands a declarative description into a scripted workload whose true
//! interaction-lag endings, irritation penalties, and per-OPP orderings
//! are known *analytically by construction*, carried alongside the
//! workload as a [`truth::GroundTruth`] manifest.
//!
//! The differential suite in `tests/` then runs the real `Lab` pipeline
//! over the [`matrix::scenarios`] matrix and asserts stage-by-stage
//! agreement with each manifest under an explicit
//! [`truth::TolerancePolicy`], plus golden snapshots of `report.rs`
//! output under `tests/golden/` (see [`golden`]).

#![warn(missing_docs)]

pub mod golden;
pub mod matrix;
pub mod scenario;
pub mod truth;

pub use golden::{assert_matches_golden, assert_matches_golden_at, golden_dir};
pub use matrix::scenarios;
pub use scenario::{ResponseKind, Scenario, ScenarioSpec};
pub use truth::{ExpectedRanking, GroundTruth, LagModel, TolerancePolicy, TruthLag};
