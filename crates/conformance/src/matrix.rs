//! The parameterised conformance matrix: every scenario the differential
//! suite runs, straddling each Shneiderman threshold from both sides and
//! crossing the masked / double-occurrence / frame-rate / fault axes.

use interlag_device::script::InteractionCategory;
use interlag_evdev::time::SimDuration;
use interlag_workloads::gen::MCYCLES;

use crate::scenario::ScenarioSpec;

/// 60 fps capture period.
pub const FPS60: SimDuration = SimDuration::from_micros(16_667);
/// 15 fps capture period.
pub const FPS15: SimDuration = SimDuration::from_micros(66_667);

use InteractionCategory::{Common, Complex, SimpleFrequent, Typing};

const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

/// The full scenario matrix. Names are unique; every entry builds and
/// validates (see the unit tests below), and the suite in
/// `tests/conformance.rs` checks each against its manifest.
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        // Shneiderman straddle: one below and one above each threshold
        // (150 ms typing, 1 s simple-frequent, 4 s common, 12 s complex).
        ScenarioSpec::wait("typing-below", Typing, MS(60)),
        ScenarioSpec::wait("typing-above", Typing, MS(450)),
        ScenarioSpec::wait("simple-below", SimpleFrequent, MS(600)),
        ScenarioSpec::wait("simple-above", SimpleFrequent, MS(1_500)),
        ScenarioSpec::wait("common-below", Common, MS(3_000)),
        ScenarioSpec::wait("common-above", Common, MS(4_500)).taps(1),
        ScenarioSpec::wait("complex-below", Complex, MS(10_000)).taps(1),
        ScenarioSpec::wait("complex-above", Complex, MS(12_600)).taps(1),
        // Masked endings: the ending's changed region overlaps the
        // standard mask (cursor rectangle), exercising masked compare in
        // suggester and matcher.
        ScenarioSpec::wait("typing-above-masked", Typing, MS(450)).masked(),
        ScenarioSpec::wait("simple-below-masked", SimpleFrequent, MS(600)).masked(),
        ScenarioSpec::wait("common-above-masked", Common, MS(4_500)).taps(1).masked(),
        ScenarioSpec::wait("complex-below-masked", Complex, MS(10_000)).taps(1).masked(),
        // Double occurrence: progress scene then back to the beginning
        // image, so the true ending is the second match run (§II-E).
        ScenarioSpec::wait("occ2-typing-above", Typing, MS(450)).double_occurrence(),
        ScenarioSpec::wait("occ2-simple-below", SimpleFrequent, MS(600)).double_occurrence(),
        ScenarioSpec::wait("occ2-simple-above", SimpleFrequent, MS(1_500)).double_occurrence(),
        ScenarioSpec::wait("occ2-common-below", Common, MS(3_000)).double_occurrence(),
        // Frame-rate axis: the same truths must hold on finer and coarser
        // capture grids (the tolerance scales with the frame period).
        ScenarioSpec::wait("fps60-simple-below", SimpleFrequent, MS(600)).frame_period(FPS60),
        ScenarioSpec::wait("fps60-typing-above", Typing, MS(450)).frame_period(FPS60),
        ScenarioSpec::wait("fps15-simple-above", SimpleFrequent, MS(1_500)).frame_period(FPS15),
        ScenarioSpec::wait("fps15-common-below", Common, MS(3_000)).frame_period(FPS15),
        // Fault-injected: 2 % capture/replay/dvfs faults under the
        // relaxed fault tolerance policy; event loss stays zero so the
        // manifest remains total.
        ScenarioSpec::wait("faulty-typing-above", Typing, MS(450)).faulty(0xfa_0001),
        ScenarioSpec::wait("faulty-simple-above", SimpleFrequent, MS(1_500)).faulty(0xfa_0002),
        ScenarioSpec::wait("faulty-common-below", Common, MS(3_000)).faulty(0xfa_0003),
        ScenarioSpec::wait("faulty-occ2-simple-below", SimpleFrequent, MS(600))
            .double_occurrence()
            .faulty(0xfa_0004),
        // Ranking scenarios: compute-bound lag shrinks with frequency;
        // wait-bound lag must not.
        ScenarioSpec::compute("ranking-compute", SimpleFrequent, 150 * MCYCLES).taps(1),
        ScenarioSpec::wait("ranking-wait", SimpleFrequent, MS(600)).taps(1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ResponseKind;
    use crate::truth::ExpectedRanking;
    use interlag_video::stream::FRAME_PERIOD_30FPS;
    use std::collections::BTreeSet;

    #[test]
    fn matrix_meets_issue_floor() {
        let m = scenarios();
        assert!(m.len() >= 24, "matrix has {} scenarios, need >= 24", m.len());
        assert!(m.iter().filter(|s| s.fault_seed.is_some()).count() >= 4);
    }

    #[test]
    fn every_threshold_class_is_straddled() {
        let m = scenarios();
        for cat in [Typing, SimpleFrequent, Common, Complex] {
            let threshold = cat.threshold();
            let lag_of = |s: &ScenarioSpec| match s.response {
                ResponseKind::Wait(d) => d,
                ResponseKind::Compute(_) => SimDuration::ZERO,
            };
            assert!(
                m.iter().any(|s| s.category == cat && lag_of(s) > threshold),
                "{cat:?} has no above-threshold scenario"
            );
            assert!(
                m.iter()
                    .any(|s| s.category == cat && !lag_of(s).is_zero() && lag_of(s) < threshold),
                "{cat:?} has no below-threshold scenario"
            );
        }
    }

    #[test]
    fn axes_are_covered() {
        let m = scenarios();
        assert!(m.iter().any(|s| s.masked_ending));
        assert!(m.iter().any(|s| s.double_occurrence));
        assert!(m.iter().any(|s| s.double_occurrence && s.fault_seed.is_some()));
        let periods: BTreeSet<u64> = m.iter().map(|s| s.frame_period.as_micros()).collect();
        assert!(periods.len() >= 3, "need 30 fps plus at least two other rates");
        assert!(periods.contains(&FRAME_PERIOD_30FPS.as_micros()));
        assert!(m.iter().any(|s| matches!(s.response, ResponseKind::Compute(_))));
    }

    #[test]
    fn names_are_unique() {
        let m = scenarios();
        let names: BTreeSet<&str> = m.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), m.len());
    }

    #[test]
    fn every_scenario_builds_and_validates() {
        for spec in scenarios() {
            spec.validate().unwrap_or_else(|e| panic!("{e}"));
            let sc = spec.build();
            assert_eq!(sc.truth.lags.len(), spec.taps);
            assert_eq!(sc.truth.penalties.len(), spec.taps);
            let expected = match spec.response {
                ResponseKind::Wait(_) => ExpectedRanking::FrequencyIndependent,
                ResponseKind::Compute(_) => ExpectedRanking::FasterIsBetter,
            };
            assert_eq!(sc.truth.expected_ranking, expected);
        }
    }
}
