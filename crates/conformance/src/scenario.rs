//! Synthetic oracle scenarios: scripted workloads with analytic ground truth.
//!
//! A [`ScenarioSpec`] describes one workload shape — interaction category,
//! response model (wait-bound or compute-bound), tap count, masked or
//! double-occurrence endings, capture frame rate, optional fault seed.
//! [`ScenarioSpec::build`] expands it into a runnable [`Scenario`]: a
//! [`Workload`] whose script is generated tap by tap, together with the
//! [`GroundTruth`] manifest derived from the same parameters *before*
//! anything is simulated.
//!
//! # The frame-boundary danger window
//!
//! The reference annotation pass picks, for each interaction, the first
//! suggested frame at or after the true service time `v`. A frame stamped
//! inside the service quantum shows end-of-quantum screen state, so a frame
//! boundary `b` with `floor_ms(v) <= b < v` displays the ending *before*
//! `v` — the picker would skip it and annotate the wrong frame. The builder
//! therefore nudges each interaction's start forward in 1 ms steps until no
//! capture-frame boundary lands inside that window. The window is at most
//! 200 µs for wait-bound responses (the epsilon compute time at the slowest
//! OPP) and is computed exactly for compute-bound responses at the
//! reference (maximum) frequency, which is the only one the picker sees.

use interlag_device::device::DeviceConfig;
use interlag_device::scene::{Scene, SceneUpdate};
use interlag_device::script::{DeviceScript, InteractionCategory, InteractionSpec};
use interlag_device::task::{Phase, TaskSpec};
use interlag_evdev::gesture::Gesture;
use interlag_evdev::mt::Point;
use interlag_evdev::time::{SimDuration, SimTime};
use interlag_faults::FaultConfig;
use interlag_power::opp::Frequency;
use interlag_video::frame::Rect;
use interlag_workloads::gen::Workload;

use crate::truth::{ExpectedRanking, GroundTruth, LagModel, TolerancePolicy, TruthLag};

/// Cycle cost of the token compute slice in a wait-bound response: small
/// enough to finish inside the delivery quantum at every OPP (167 µs at
/// 300 MHz), so the wait duration dominates the lag.
pub const EPS_CYCLES: u64 = 50_000;

/// Conservative bound on the compute epsilon of a wait-bound response, in
/// microseconds, used when checking the frame-boundary danger window. The
/// true epsilon at the reference frequency is ~24 µs; 200 µs covers every
/// OPP in the default table.
const WAIT_WINDOW_US: u64 = 200;

/// How many 1 ms nudges the builder tries before giving up. With a frame
/// period that is not a multiple of 1 ms a safe offset exists within a few
/// steps; 500 is far beyond any real search.
const MAX_NUDGE_MS: u64 = 500;

/// How a scripted response produces its ending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseKind {
    /// Wait-bound: an epsilon compute slice then this I/O wait; the lag is
    /// frequency independent.
    Wait(SimDuration),
    /// Compute-bound: this many cycles of foreground work; the lag is
    /// `cycles / f`.
    Compute(u64),
}

/// A declarative description of one conformance scenario.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Unique scenario name (also the generated workload name).
    pub name: &'static str,
    /// HCI category of every interaction in the scenario.
    pub category: InteractionCategory,
    /// Response model shared by every interaction.
    pub response: ResponseKind,
    /// Number of scripted taps.
    pub taps: usize,
    /// If set, ending scenes carry a cursor overlay so part of the changed
    /// region falls inside the standard mask.
    pub masked_ending: bool,
    /// If set, the response shows a progress scene then returns to the
    /// scene that was visible at input time, making the true ending the
    /// *second* occurrence of its image.
    pub double_occurrence: bool,
    /// Capture frame period (30 fps by default).
    pub frame_period: SimDuration,
    /// If set, the scenario runs under `FaultConfig::uniform(seed, 0.02)`
    /// (with event loss zeroed so the manifest stays total) and the
    /// fault-injected tolerance policy.
    pub fault_seed: Option<u64>,
}

impl ScenarioSpec {
    /// A wait-bound scenario: the lag is `lag` at any frequency.
    pub const fn wait(name: &'static str, category: InteractionCategory, lag: SimDuration) -> Self {
        ScenarioSpec {
            name,
            category,
            response: ResponseKind::Wait(lag),
            taps: 2,
            masked_ending: false,
            double_occurrence: false,
            frame_period: FRAME_PERIOD_30FPS,
            fault_seed: None,
        }
    }

    /// A compute-bound scenario: the lag is `cycles / f`.
    pub const fn compute(name: &'static str, category: InteractionCategory, cycles: u64) -> Self {
        ScenarioSpec {
            name,
            category,
            response: ResponseKind::Compute(cycles),
            taps: 2,
            masked_ending: false,
            double_occurrence: false,
            frame_period: FRAME_PERIOD_30FPS,
            fault_seed: None,
        }
    }

    /// Overrides the tap count.
    pub const fn taps(mut self, taps: usize) -> Self {
        self.taps = taps;
        self
    }

    /// Gives ending scenes a cursor overlay inside the standard mask.
    pub const fn masked(mut self) -> Self {
        self.masked_ending = true;
        self
    }

    /// Makes the true ending the second occurrence of its image.
    pub const fn double_occurrence(mut self) -> Self {
        self.double_occurrence = true;
        self
    }

    /// Overrides the capture frame period.
    pub const fn frame_period(mut self, period: SimDuration) -> Self {
        self.frame_period = period;
        self
    }

    /// Runs the scenario fault-injected with this seed.
    pub const fn faulty(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// The nominal (frequency-independent part of the) lag at `f`.
    fn nominal_lag(&self, f: Frequency) -> SimDuration {
        match self.response {
            ResponseKind::Wait(d) => d,
            ResponseKind::Compute(c) => f.time_for(c),
        }
    }

    /// Expands the spec into a runnable scenario plus its manifest.
    ///
    /// # Panics
    ///
    /// Panics if no frame-boundary-safe start offset exists within
    /// [`MAX_NUDGE_MS`] (impossible for the supported frame periods) or if
    /// the spec is internally inconsistent (e.g. zero taps).
    pub fn build(&self) -> Scenario {
        assert!(self.taps > 0, "scenario {} needs at least one tap", self.name);
        let device = DeviceConfig { frame_period: self.frame_period, ..Default::default() };
        let opps = device.opps.clone();
        let n_opps = opps.frequencies().count();
        let probe = opps.frequencies().nth(n_opps / 2).expect("default OPP table is non-empty");
        let khz_ref = opps.max_freq().as_khz() as u64;
        let fp_us = device.frame_period.as_micros();

        let tolerance = if self.fault_seed.is_some() {
            TolerancePolicy::fault_injected(&device)
        } else {
            TolerancePolicy::quiescent(&device)
        };

        // Gap between taps: the slowest OPP's lag, the 80 ms tap gesture,
        // and two quiet seconds so each ending settles well before the
        // next window opens.
        let worst_ms = self.nominal_lag(opps.min_freq()).as_millis() + 2;
        let gap_ms = worst_ms + 80 + 2_000;

        let widget = Rect::new(10, 20, 20, 20);
        let tap_at = Point::new(15, 25);

        let mut current = Scene::default();
        let mut interactions = Vec::with_capacity(self.taps);
        let mut lags = Vec::with_capacity(self.taps);
        let mut start_ms: u64 = 2_000;
        let mut last_end_ms = 0;

        for k in 0..self.taps {
            start_ms = self.safe_start(start_ms, khz_ref, fp_us);

            let ending_seed = 0x5EED_0000_0000_0000_u64 ^ ((k as u64 + 1) * 0x0101_0101);
            let mut ending = Scene::new(ending_seed);
            if self.masked_ending {
                ending = ending.with_cursor();
            }

            let (response, model, occurrence, lag_ms) = match self.response {
                ResponseKind::Wait(lag) if self.double_occurrence => {
                    // Progress scene, then back to the scene visible at
                    // input time: the ending image equals the beginning, so
                    // its true occurrence is 2. The resume after the first
                    // wait rounds up to the next quantum, adding 1 ms.
                    let lag_ms = lag.as_millis();
                    let w1 = SimDuration::from_millis(lag_ms / 2);
                    let w2 = lag - w1;
                    let progress = Scene::new(0x9A06_0000_0000_0000_u64 ^ (k as u64 + 1));
                    let spec = TaskSpec::new(vec![
                        Phase::with_wait(EPS_CYCLES, w1, SceneUpdate::replace(progress)),
                        Phase::with_wait(EPS_CYCLES, w2, SceneUpdate::replace(current.clone())),
                    ]);
                    (spec, LagModel::Wait(lag), 2, lag_ms + 1)
                }
                ResponseKind::Wait(lag) => {
                    let spec = TaskSpec::new(vec![Phase::with_wait(
                        EPS_CYCLES,
                        lag,
                        SceneUpdate::replace(ending.clone()),
                    )]);
                    current = ending;
                    (spec, LagModel::Wait(lag), 1, lag.as_millis())
                }
                ResponseKind::Compute(cycles) => {
                    let spec = TaskSpec::single(cycles, SceneUpdate::replace(ending.clone()));
                    current = ending;
                    (
                        spec,
                        LagModel::Compute(cycles),
                        1,
                        self.nominal_lag(opps.min_freq()).as_millis(),
                    )
                }
            };

            interactions.push(InteractionSpec {
                label: format!("{}-{k}", self.name),
                start: SimTime::ZERO + SimDuration::from_millis(start_ms),
                gesture: Gesture::tap(tap_at),
                widget: Some(widget),
                response: Some(response),
                category: self.category,
            });
            lags.push(TruthLag { interaction_id: k, model, category: self.category, occurrence });

            last_end_ms = start_ms + lag_ms + 2;
            start_ms += gap_ms;
        }

        let penalties = lags.iter().map(|t| t.penalty_at(probe)).collect();
        let expected_ranking = match self.response {
            ResponseKind::Wait(_) => ExpectedRanking::FrequencyIndependent,
            ResponseKind::Compute(_) => ExpectedRanking::FasterIsBetter,
        };

        let script = DeviceScript { interactions, background: Vec::new(), tick: None };
        // Workload::run_until() adds a fixed 15 s tail to the duration;
        // size the duration so the run ends ~2 s after the last ending
        // (but never before the 15 s minimum).
        let duration = SimDuration::from_millis((last_end_ms + 2_000).saturating_sub(15_000));
        let workload = Workload {
            name: self.name.to_string(),
            description: format!("conformance oracle scenario {}", self.name),
            script,
            duration,
        };

        let faults = self.fault_seed.map(|seed| {
            let mut fc = FaultConfig::uniform(seed, 0.02);
            // Every scripted interaction must be delivered or the manifest
            // is no longer total over the script.
            fc.replay.event_loss_rate = 0.0;
            if self.double_occurrence {
                // A corrupted base frame would split the first match run
                // and surface a phantom second occurrence before the true
                // ending — silently wrong, not recoverable by escalation.
                fc.capture.corrupt_rate = 0.0;
            }
            fc
        });

        Scenario {
            name: self.name,
            device,
            workload,
            truth: GroundTruth { lags, penalties, expected_ranking },
            faults,
            tolerance,
            probe,
        }
    }

    /// Returns the first start time at or after `start_ms` (in whole
    /// milliseconds) whose service time has no capture-frame boundary in
    /// its danger window.
    fn safe_start(&self, mut start_ms: u64, khz_ref: u64, fp_us: u64) -> u64 {
        for _ in 0..MAX_NUDGE_MS {
            if !self.frame_in_danger_window(start_ms, khz_ref, fp_us) {
                return start_ms;
            }
            start_ms += 1;
        }
        panic!(
            "scenario {}: no frame-boundary-safe start near {start_ms} ms (frame period {fp_us} µs)",
            self.name
        );
    }

    /// `true` if a capture-frame boundary falls inside the danger window
    /// `[floor_ms(v), v)` of the service time `v` implied by `start_ms`.
    fn frame_in_danger_window(&self, start_ms: u64, khz_ref: u64, fp_us: u64) -> bool {
        let (window_start_us, window_len_us) = match self.response {
            ResponseKind::Wait(lag) if self.double_occurrence => {
                let lag_ms = lag.as_millis();
                // v2 = start + w1 + 1 ms (resume rounding) + w2 + eps.
                ((start_ms + lag_ms + 1) * 1_000, WAIT_WINDOW_US)
            }
            ResponseKind::Wait(lag) => ((start_ms + lag.as_millis()) * 1_000, WAIT_WINDOW_US),
            ResponseKind::Compute(cycles) => {
                // Exact service fraction at the reference frequency, the
                // only one the annotation picker ever sees.
                let full_ms = cycles / khz_ref;
                let rem = cycles % khz_ref;
                let frac_us = if rem == 0 { 0 } else { (rem * 1_000).div_ceil(khz_ref) };
                ((start_ms + full_ms) * 1_000, frac_us)
            }
        };
        frame_boundary_in(window_start_us, window_len_us, fp_us)
    }

    /// Consistency checks that don't require running the pipeline: penalty
    /// margins clear the tolerance slack on both sides of the threshold,
    /// and every interaction's danger window is clean after building.
    pub fn validate(&self) -> Result<(), String> {
        let sc = self.build();
        let threshold = self.category.threshold();
        let slack = sc.tolerance.lag_slack + SimDuration::from_millis(2);
        for truth in &sc.truth.lags {
            let lag = truth.lag_at(sc.probe);
            let margin = if lag >= threshold { lag - threshold } else { threshold - lag };
            if margin < slack {
                return Err(format!(
                    "{}: interaction {} lag {} ms sits within slack ({} ms) of threshold {} ms",
                    self.name,
                    truth.interaction_id,
                    lag.as_millis(),
                    slack.as_millis(),
                    threshold.as_millis(),
                ));
            }
        }
        let khz_ref = sc.device.opps.max_freq().as_khz() as u64;
        let fp_us = sc.device.frame_period.as_micros();
        for spec in &sc.workload.script.interactions {
            let start_ms = (spec.start - SimTime::ZERO).as_millis();
            if self.frame_in_danger_window(start_ms, khz_ref, fp_us) {
                return Err(format!(
                    "{}: interaction at {start_ms} ms still has a frame boundary in its danger window",
                    self.name
                ));
            }
        }
        Ok(())
    }
}

/// `true` if a multiple of `fp_us` lies in `[start_us, start_us + len_us)`.
fn frame_boundary_in(start_us: u64, len_us: u64, fp_us: u64) -> bool {
    if len_us == 0 {
        return false;
    }
    let first = start_us.div_ceil(fp_us) * fp_us;
    first < start_us + len_us
}

/// A fully expanded scenario: device configuration, generated workload,
/// analytic manifest, fault plan, and the tolerance its measurements are
/// held to.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (same as the workload name).
    pub name: &'static str,
    /// Device the scenario runs on (default screen/OPPs, scenario frame
    /// period).
    pub device: DeviceConfig,
    /// The generated workload.
    pub workload: Workload,
    /// The analytic ground-truth manifest.
    pub truth: GroundTruth,
    /// Fault plan, if the scenario is fault-injected.
    pub faults: Option<FaultConfig>,
    /// Agreement bounds for this scenario's measurements.
    pub tolerance: TolerancePolicy,
    /// Mid-table frequency used for quiescent probe runs and expected
    /// penalties.
    pub probe: Frequency,
}

/// Re-exported so scenario constructors can name the default frame period
/// in `const` position.
pub use interlag_video::stream::FRAME_PERIOD_30FPS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_boundary_detection() {
        // Boundary at 33_333 µs; window [33_000, 33_200) misses it,
        // [33_200, 33_400) contains it.
        assert!(!frame_boundary_in(33_000, 200, 33_333));
        assert!(frame_boundary_in(33_200, 200, 33_333));
        // Boundary exactly at window start counts.
        assert!(frame_boundary_in(66_666, 200, 33_333));
        assert!(!frame_boundary_in(66_667, 0, 33_333));
    }

    #[test]
    fn build_produces_one_truth_per_tap() {
        let sc = ScenarioSpec::wait(
            "unit-wait",
            InteractionCategory::SimpleFrequent,
            SimDuration::from_millis(600),
        )
        .taps(3)
        .build();
        assert_eq!(sc.workload.script.interactions.len(), 3);
        assert_eq!(sc.truth.lags.len(), 3);
        assert_eq!(sc.truth.penalties.len(), 3);
        assert!(sc.truth.penalties.iter().all(|p| p.is_zero()));
        assert!(sc.faults.is_none());
        for (k, t) in sc.truth.lags.iter().enumerate() {
            assert_eq!(t.interaction_id, k);
            assert_eq!(t.occurrence, 1);
        }
    }

    #[test]
    fn double_occurrence_marks_occurrence_two() {
        let sc = ScenarioSpec::wait(
            "unit-occ2",
            InteractionCategory::SimpleFrequent,
            SimDuration::from_millis(600),
        )
        .double_occurrence()
        .build();
        assert!(sc.truth.lags.iter().all(|t| t.occurrence == 2));
    }

    #[test]
    fn faulty_specs_zero_event_loss() {
        let sc = ScenarioSpec::wait(
            "unit-faulty",
            InteractionCategory::Typing,
            SimDuration::from_millis(450),
        )
        .faulty(7)
        .build();
        let fc = sc.faults.expect("faulty scenario carries a fault config");
        assert_eq!(fc.replay.event_loss_rate, 0.0);
        assert!(fc.capture.drop_rate > 0.0);
    }

    #[test]
    fn starts_avoid_danger_windows() {
        for spec in [
            ScenarioSpec::wait(
                "unit-window-a",
                InteractionCategory::SimpleFrequent,
                SimDuration::from_millis(600),
            ),
            ScenarioSpec::compute(
                "unit-window-b",
                InteractionCategory::SimpleFrequent,
                150 * interlag_workloads::gen::MCYCLES,
            ),
        ] {
            spec.validate().expect("generated scenario validates");
        }
    }
}
