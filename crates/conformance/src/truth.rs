//! Ground-truth manifests: what a scenario's lags *must* measure as.
//!
//! Every generated scenario carries a [`GroundTruth`] built analytically
//! from the script it was generated with — not from running the pipeline.
//! The differential suite then runs the real pipeline and checks each
//! stage against the manifest under an explicit [`TolerancePolicy`].
//!
//! The analytic model rests on two simulator facts (see
//! `interlag_device::device`):
//!
//! * a phase's deferred scene update becomes visible at exactly
//!   `completion + wait`, and the interaction's service time is recorded
//!   at that instant (microsecond precision, no quantum rounding);
//! * foreground tasks have strict priority over background work, so the
//!   per-input bookkeeping cost and periodic ticks never delay the
//!   scripted response.
//!
//! Hence a wait-dominated response (`Phase::with_wait` with an epsilon
//! cycle count) produces a lag of `wait + ε(f)` at *any* frequency, and a
//! compute-bound response of `c` cycles produces `c / f` — both known in
//! closed form before anything runs.

use interlag_device::device::DeviceConfig;
use interlag_device::script::InteractionCategory;
use interlag_evdev::time::SimDuration;
use interlag_power::opp::Frequency;

/// How one interaction's true lag depends on the CPU clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LagModel {
    /// I/O-wait dominated: the lag is this duration at any frequency
    /// (plus the sub-millisecond epsilon of its token cycle count).
    Wait(SimDuration),
    /// Compute bound: the lag is `cycles / f` at frequency `f`.
    Compute(u64),
}

impl LagModel {
    /// The analytic lag at frequency `f` (the wait itself, or the cycle
    /// demand clocked at `f`).
    pub fn lag_at(&self, f: Frequency) -> SimDuration {
        match *self {
            LagModel::Wait(d) => d,
            LagModel::Compute(cycles) => f.time_for(cycles),
        }
    }
}

/// The analytically known truth for one scripted interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthLag {
    /// Interaction id (index in the generated script).
    pub interaction_id: usize,
    /// How the lag scales with frequency.
    pub model: LagModel,
    /// HCI category, fixing the irritation threshold.
    pub category: InteractionCategory,
    /// Which match-run of the ending image is the true ending (2 when the
    /// ending looks like the beginning, §II-E).
    pub occurrence: u32,
}

impl TruthLag {
    /// The true lag at frequency `f`.
    pub fn lag_at(&self, f: Frequency) -> SimDuration {
        self.model.lag_at(f)
    }

    /// The true irritation penalty at frequency `f` under the
    /// category-threshold model: `max(0, lag - threshold)`.
    pub fn penalty_at(&self, f: Frequency) -> SimDuration {
        self.lag_at(f).saturating_sub(self.category.threshold())
    }
}

/// How per-OPP mean lags must be ordered for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedRanking {
    /// Wait-dominated: every OPP measures the same lag (within slack);
    /// no frequency buys responsiveness.
    FrequencyIndependent,
    /// Compute-bound: mean lag is non-increasing as frequency rises, and
    /// strictly lower at the top of the table than at the bottom.
    FasterIsBetter,
}

/// The full manifest one scenario carries: per-interaction true lags,
/// the penalties expected at the scenario's probe frequency, and how the
/// per-OPP lag ordering must come out.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Per-interaction truth, ordered by interaction id.
    pub lags: Vec<TruthLag>,
    /// Expected irritation penalties at the scenario's probe frequency,
    /// parallel to `lags`.
    pub penalties: Vec<SimDuration>,
    /// Expected per-OPP mean-lag ordering.
    pub expected_ranking: ExpectedRanking,
}

impl GroundTruth {
    /// The truth entry for interaction `id`.
    pub fn lag(&self, id: usize) -> Option<&TruthLag> {
        self.lags.iter().find(|t| t.interaction_id == id)
    }
}

/// Explicit agreement bounds between a measurement and the manifest.
///
/// The measured ending of a lag sits on the capture-frame grid, so it can
/// trail the true service time by up to one frame period; input delivery
/// and update application each round to the 1 ms scheduler quantum; and a
/// wait phase's epsilon cycle count adds under a millisecond of compute.
/// A frame captured inside the service quantum may also show the ending
/// up to one quantum *early* (the screen repaints before frames due in
/// the quantum are sampled), which is why the lower bound is not zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TolerancePolicy {
    /// Maximum amount a measured lag may exceed its true value.
    pub lag_slack: SimDuration,
    /// Maximum amount a measured lag may undercut its true value (the
    /// same-quantum early-capture case).
    pub early_slack: SimDuration,
}

impl TolerancePolicy {
    /// The policy for fault-free runs on `device`: one capture frame of
    /// grid quantisation plus a few scheduler quanta of rounding and the
    /// sub-millisecond compute epsilon of a wait phase.
    pub fn quiescent(device: &DeviceConfig) -> Self {
        TolerancePolicy {
            lag_slack: device.frame_period + device.quantum * 4 + SimDuration::from_millis(1),
            early_slack: device.quantum,
        }
    }

    /// The policy for fault-injected runs: dropped or duplicated capture
    /// frames can hide the true ending for a few extra slots, and delayed
    /// replay adds up to 2 ms, so the upper bound relaxes accordingly.
    pub fn fault_injected(device: &DeviceConfig) -> Self {
        let base = Self::quiescent(device);
        TolerancePolicy {
            lag_slack: base.lag_slack + device.frame_period * 3 + SimDuration::from_millis(2),
            early_slack: base.early_slack,
        }
    }

    /// `true` if a measured lag agrees with its true value under this
    /// policy.
    pub fn lag_agrees(&self, truth: SimDuration, measured: SimDuration) -> bool {
        measured >= truth.saturating_sub(self.early_slack) && measured <= truth + self.lag_slack
    }

    /// `true` if a measured penalty agrees with its expected value.
    /// Expected-zero penalties must measure exactly zero (scenarios keep
    /// their lags clear of the threshold by more than the slack); others
    /// carry the same bounds as the lag itself.
    pub fn penalty_agrees(&self, expected: SimDuration, measured: SimDuration) -> bool {
        if expected.is_zero() {
            measured.is_zero()
        } else {
            measured >= expected.saturating_sub(self.early_slack)
                && measured <= expected + self.lag_slack
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_model_closed_forms() {
        let f = Frequency::from_khz(1_000_000); // 1 GHz: 1 cycle per ns
        assert_eq!(LagModel::Wait(SimDuration::from_millis(300)).lag_at(f).as_millis(), 300);
        assert_eq!(LagModel::Compute(1_000_000_000).lag_at(f), SimDuration::from_secs(1));
        // Slower clock, longer lag; waits don't care.
        let slow = Frequency::from_khz(500_000);
        assert_eq!(LagModel::Compute(1_000_000_000).lag_at(slow), SimDuration::from_secs(2));
        assert_eq!(LagModel::Wait(SimDuration::from_millis(300)).lag_at(slow).as_millis(), 300);
    }

    #[test]
    fn penalties_clamp_at_zero() {
        let t = TruthLag {
            interaction_id: 0,
            model: LagModel::Wait(SimDuration::from_millis(600)),
            category: InteractionCategory::SimpleFrequent,
            occurrence: 1,
        };
        let f = Frequency::from_khz(1_000_000);
        assert!(t.penalty_at(f).is_zero());
        let above = TruthLag { model: LagModel::Wait(SimDuration::from_millis(1_500)), ..t };
        assert_eq!(above.penalty_at(f).as_millis(), 500);
    }

    #[test]
    fn tolerance_bounds_are_one_sided_around_truth() {
        let device = DeviceConfig::default();
        let tol = TolerancePolicy::quiescent(&device);
        let truth = SimDuration::from_millis(600);
        assert!(tol.lag_agrees(truth, truth));
        assert!(tol.lag_agrees(truth, truth + device.frame_period));
        assert!(!tol.lag_agrees(truth, truth + tol.lag_slack + SimDuration::from_micros(1)));
        // One quantum early is the capture-inside-the-service-quantum case.
        assert!(tol.lag_agrees(truth, truth - device.quantum));
        assert!(!tol.lag_agrees(truth, truth - device.quantum * 2));
    }

    #[test]
    fn zero_penalties_must_measure_exactly_zero() {
        let tol = TolerancePolicy::quiescent(&DeviceConfig::default());
        assert!(tol.penalty_agrees(SimDuration::ZERO, SimDuration::ZERO));
        assert!(!tol.penalty_agrees(SimDuration::ZERO, SimDuration::from_micros(1)));
        let p = SimDuration::from_millis(300);
        assert!(tol.penalty_agrees(p, p + SimDuration::from_millis(30)));
    }

    #[test]
    fn fault_injected_policy_is_strictly_looser() {
        let device = DeviceConfig::default();
        let q = TolerancePolicy::quiescent(&device);
        let f = TolerancePolicy::fault_injected(&device);
        assert!(f.lag_slack > q.lag_slack);
        assert_eq!(f.early_slack, q.early_slack);
    }
}
