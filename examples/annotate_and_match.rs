//! The two-part methodology of Figure 4, step by step.
//!
//! Part A (once per workload): execute, capture video, run the suggester,
//! let the annotator pick ending frames → annotation database.
//! Part B (fully automatic, any number of times): replay under a
//! different configuration, capture, and let the matcher mark up the
//! video into a lag profile — compared here against the simulator's
//! ground truth.
//!
//! Run with: `cargo run --release --example annotate_and_match`

use interlag::core::annotation::{annotate, GroundTruthPicker, LastSuggestionPicker};
use interlag::core::experiment::{Lab, LabConfig};
use interlag::core::matcher::mark_up;
use interlag::core::suggester::{Suggester, SuggesterConfig};
use interlag::device::dvfs::FixedGovernor;
use interlag::device::script::InteractionCategory;
use interlag::power::opp::Frequency;
use interlag::video::mask::MatchTolerance;
use interlag::workloads::gen::{WorkloadBuilder, MCYCLES};

fn main() {
    // A 90-second session with the interesting annotation cases: a
    // progressive load, typing (blinking cursor), and a progress dialog
    // that returns to the same screen (occurrence 2).
    let mut b = WorkloadBuilder::new(0x0a17);
    b.app_launch("open reader", 700 * MCYCLES, 8, InteractionCategory::Common);
    b.think_ms(3_000, 5_000);
    b.typing_burst("search query", 6, 15 * MCYCLES);
    b.think_ms(2_000, 3_000);
    b.heavy_with_progress("download issue", 1_800 * MCYCLES, InteractionCategory::Complex);
    b.think_ms(3_000, 5_000);
    b.quick_tap("open article", 400 * MCYCLES, InteractionCategory::Common);
    let workload = b.build("annotate-demo", "annotation walkthrough");

    let lab = Lab::new(LabConfig::default());

    // ---- Part A: annotate once --------------------------------------------
    println!("Part A: reference execution at 2.15 GHz, suggester + picker");
    let (db, stats, reference) = lab.annotate_workload(&workload).expect("annotate");
    println!(
        "  {} lags annotated, {} suggestions shown for {} frames -> {:.0}x fewer frames to inspect",
        stats.annotated,
        stats.suggestions_shown,
        stats.frames_in_windows,
        stats.reduction_factor()
    );
    for ann in db.iter() {
        println!(
            "  lag {:>2}: occurrence {}, threshold {}, mask rects {}",
            ann.interaction_id,
            ann.occurrence,
            ann.threshold,
            ann.mask.excluded().len()
        );
    }

    // ---- Part B: automatic markup of a different configuration -----------
    println!("\nPart B: replay pinned to 0.42 GHz, matcher marks up the video");
    let trace = workload.script.record_trace();
    let mut gov = FixedGovernor::new(Frequency::from_mhz(422));
    let run = lab.run(&workload, trace, &mut gov).expect("clean run");
    let video = run.video.as_ref().expect("capture on");
    let (profile, failures) = mark_up(video, &run.lag_beginnings(), &db, "fixed-0.42 GHz");
    assert!(failures.is_empty(), "matcher failures: {failures:?}");

    println!("  {:>4} {:>14} {:>14} {:>9}", "lag", "matched", "ground truth", "error");
    for rec in run.interactions.iter().filter(|r| r.triggered && !r.spurious) {
        let truth = rec.true_lag().expect("serviced");
        let matched = profile.lag_of(rec.id).expect("matched");
        let err_ms = (matched.as_millis_f64() - truth.as_millis_f64()).abs();
        println!(
            "  {:>4} {:>14} {:>14} {:>7.0}ms",
            rec.id,
            matched.to_string(),
            truth.to_string(),
            err_ms
        );
        assert!(err_ms <= 36.0, "matcher must agree within one frame period");
    }
    println!("  matcher agrees with ground truth within one 30 fps frame everywhere");

    // ---- What a worse annotator costs -------------------------------------
    // The heuristic "always take the last suggestion" annotator measures
    // the whole still period, not the service point.
    let screen = lab.device().config().screen;
    let mask = {
        let mut m = screen.status_bar_mask();
        m.exclude(screen.cursor_rect);
        m.exclude(screen.spinner_rect);
        m
    };
    let suggester = Suggester::new(SuggesterConfig { mask: mask.clone(), ..Default::default() });
    let (naive_db, _) = annotate(
        &reference,
        &suggester,
        &LastSuggestionPicker,
        &mask,
        MatchTolerance::EXACT,
        &workload.name,
    );
    let (naive_profile, _) = mark_up(video, &run.lag_beginnings(), &naive_db, "naive");
    let human = GroundTruthPicker::new(&reference);
    let _ = human; // the picker trait is what a GUI would drive
    let overshoot: f64 = naive_profile
        .entries()
        .iter()
        .filter_map(|e| {
            profile.lag_of(e.interaction_id).map(|l| e.lag.as_millis_f64() - l.as_millis_f64())
        })
        .sum::<f64>()
        / naive_profile.len().max(1) as f64;
    println!(
        "\nannotator quality: the 'last suggestion' heuristic deviates from \
         the ground-truth picker by {overshoot:.0} ms on average on this \
         workload (endings here are usually the final still period; lags \
         with trailing animations would fool it)"
    );
}
