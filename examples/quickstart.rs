//! Quickstart: record a small interactive session, run the paper's full
//! study pipeline on it (annotate → replay under 18 configurations →
//! mark up → energy + irritation), and print the headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use interlag::core::experiment::{Lab, LabConfig};
use interlag::device::script::InteractionCategory;
use interlag::workloads::gen::{WorkloadBuilder, MCYCLES};

fn main() {
    // 1. "Record" a one-minute session: the builder plays the volunteer.
    let mut b = WorkloadBuilder::new(0xd00d);
    b.app_launch("launch mail app", 420 * MCYCLES, 7, InteractionCategory::Common);
    b.think_ms(2_500, 4_000);
    for i in 0..6 {
        b.quick_tap(
            &format!("open message {i}"),
            140 * MCYCLES,
            InteractionCategory::SimpleFrequent,
        );
        b.think_ms(2_500, 5_000);
    }
    b.typing_burst("reply", 8, 9 * MCYCLES);
    b.think_ms(1_500, 2_500);
    b.heavy_with_progress("send with attachment", 1_500 * MCYCLES, InteractionCategory::Common);
    b.think_ms(3_000, 5_000);
    b.spurious_tap("tap dead space");
    let workload = b.build("quickstart", "one-minute mail session");
    println!(
        "recorded '{}': {} inputs over {:.0} s\n",
        workload.name,
        workload.script.interactions.len(),
        workload.duration.as_secs_f64()
    );

    // 2. Set up the lab (device + HDMI capture + calibrated power rig).
    let lab = Lab::new(LabConfig::default());

    // 3. Run the study: 14 fixed frequencies, 3 governors, the oracle.
    let study = lab.study(&workload).expect("study");
    println!(
        "annotated {} lags; suggester cut the frames to inspect by {:.0}x\n",
        study.db.len(),
        study.annotation.reduction_factor()
    );

    println!("{:<16} {:>12} {:>14} {:>12}", "config", "energy (J)", "vs oracle", "irritation");
    for c in study.all_configs() {
        println!(
            "{:<16} {:>12.2} {:>13.2}x {:>12}",
            c.name,
            c.mean_energy_mj() / 1_000.0,
            study.energy_normalised(c),
            c.mean_irritation().to_string(),
        );
    }

    let ond = study.config("ondemand").expect("ondemand always runs");
    let savings = 100.0 * (1.0 - 1.0 / study.energy_normalised(ond));
    println!("\npotential energy savings over ondemand at equal QoE: {savings:.0} %");
}
