//! The paper's §III governor study on one of the recorded datasets.
//!
//! Replays the chosen dataset under all 14 fixed frequencies, the three
//! Android governors and the composed oracle, then prints the energy and
//! user-irritation comparison of Figures 12–14.
//!
//! Run with: `cargo run --release --example governor_study [01|02|03|04|05]`

use interlag::core::experiment::{Lab, LabConfig};
use interlag::workloads::datasets::Dataset;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "02".to_string());
    let dataset = match which.as_str() {
        "01" => Dataset::D01,
        "02" => Dataset::D02,
        "03" => Dataset::D03,
        "04" => Dataset::D04,
        "05" => Dataset::D05,
        other => {
            eprintln!("unknown dataset {other:?}; use 01..05");
            std::process::exit(2);
        }
    };

    let workload = dataset.build();
    println!(
        "dataset {}: {} — {} inputs over {:.0} s",
        workload.name,
        workload.description,
        workload.script.interactions.len(),
        workload.duration.as_secs_f64()
    );

    let lab = Lab::new(LabConfig::default());
    let started = std::time::Instant::now();
    let study = lab.study(&workload).expect("study");
    println!(
        "study: {} lags annotated, {} configurations, {:.1} s wall clock\n",
        study.db.len(),
        study.all_configs().count(),
        started.elapsed().as_secs_f64()
    );

    println!(
        "{:<16} {:>11} {:>11} {:>14} {:>10}",
        "config", "energy (J)", "vs oracle", "irritation", "mean lag"
    );
    for c in study.all_configs() {
        let mean_lag = c.reps[0].profile.mean_lag();
        println!(
            "{:<16} {:>11.2} {:>10.2}x {:>14} {:>10}",
            c.name,
            c.mean_energy_mj() / 1_000.0,
            study.energy_normalised(c),
            c.mean_irritation().to_string(),
            mean_lag.to_string(),
        );
    }

    let ond = study.config("ondemand").expect("always present");
    let max = study.fixed.last().expect("14 fixed configs");
    println!(
        "\nheadlines: save {:.0} % vs ondemand at better QoE; save {:.0} % vs max frequency at equal QoE",
        100.0 * (1.0 - 1.0 / study.energy_normalised(ond)),
        100.0 * (1.0 - 1.0 / study.energy_normalised(max)),
    );
}
