use interlag::core::experiment::{Lab, LabConfig};
use interlag::device::dvfs::Governor;
use interlag::governors::{Conservative, Interactive, Ondemand};
use interlag::workloads::datasets::Dataset;

fn main() {
    let w = Dataset::D02.build();
    let lab = Lab::new(LabConfig::default());
    let trace = w.script.record_trace();
    for name in ["conservative", "ondemand", "interactive"] {
        let mut c;
        let mut o;
        let mut i;
        let gov: &mut dyn Governor = match name {
            "conservative" => {
                c = Conservative::default();
                &mut c
            }
            "ondemand" => {
                o = Ondemand::default();
                &mut o
            }
            _ => {
                i = Interactive::for_table(&lab.device().config().opps);
                &mut i
            }
        };
        let run = lab.run(&w, trace.clone(), gov).expect("clean run");
        println!("== {name}");
        let total: f64 = run.activity.busy_time().as_secs_f64();
        for (f, busy) in run.activity.busy_by_freq() {
            let cycles = f.as_mhz() * busy.as_secs_f64();
            println!(
                "  {f}: busy {:>8.2}s ({:>4.1}%)  {:.1} Gcycles",
                busy.as_secs_f64(),
                100.0 * busy.as_secs_f64() / total,
                cycles / 1000.0
            );
        }
    }
}
