//! Record & replay at the input-subsystem level (§II-B of the paper).
//!
//! Builds a short gesture sequence, "records" it as raw Linux input
//! events, serialises it to the `getevent` text format, parses it back,
//! and replays it through both the paper's custom timing-accurate agent
//! and a model of the stock `sendevent` tool — showing why the latter was
//! unusable for dense multi-touch traces.
//!
//! Run with: `cargo run --release --example record_replay`

use interlag::evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag::evdev::gesture::{Gesture, GestureSynth, HardKey};
use interlag::evdev::mt::Point;
use interlag::evdev::replay::{ReplayAgent, Replayer, SendeventReplayer};
use interlag::evdev::time::{SimDuration, SimTime};
use interlag::evdev::trace::EventTrace;

fn main() {
    // 1. A user session: tap, swipe, type-ish taps, back key.
    let mut synth = GestureSynth::new(1, 4);
    let mut trace = EventTrace::new();
    let gestures = [
        (200u64, Gesture::tap(Point::new(363, 419))),
        (900, Gesture::swipe(Point::new(360, 1000), Point::new(360, 250))),
        (1_700, Gesture::tap(Point::new(120, 980))),
        (2_100, Gesture::tap(Point::new(250, 990))),
        (2_600, Gesture::Key { key: HardKey::Back, hold: SimDuration::from_millis(60) }),
    ];
    for (ms, g) in &gestures {
        trace.extend_events(synth.lower(SimTime::from_millis(*ms), g));
    }
    println!(
        "recorded {} raw events over {:.2} s from {} gestures",
        trace.len(),
        trace.span().as_secs_f64(),
        gestures.len()
    );

    // 2. The getevent text form (what `getevent -t` prints on a phone).
    let text = trace.to_getevent_text();
    println!("\nfirst packet in getevent form:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }
    let parsed: EventTrace = text.parse().expect("our own output parses");
    assert_eq!(parsed, trace);
    println!("…round-trips losslessly ({} bytes)", text.len());

    // 3. Classification back to user-level inputs (Figure 10's basis).
    let inputs = classify_trace(&trace, &ClassifierConfig::default());
    let counts = count_inputs(&inputs);
    println!("\nclassified: {} taps, {} swipes, {} keys", counts.taps, counts.swipes, counts.keys);

    // 4. Replay fidelity: custom agent vs stock sendevent.
    let drain = |name: &str, r: &mut dyn Replayer| {
        let mut now = SimTime::ZERO;
        let mut replayed = 0;
        while !r.is_finished() {
            replayed += r.poll(now).len();
            now += SimDuration::from_millis(1);
        }
        let stats = r.stats();
        println!(
            "{name:<14} replayed {replayed} events, mean drift {}, max drift {}",
            stats.mean_drift(),
            stats.max_drift
        );
        stats
    };
    println!("\nreplay timing accuracy (1 ms polling):");
    let agent = drain("custom agent", &mut ReplayAgent::new(parsed.clone()));
    let tool = drain("sendevent", &mut SendeventReplayer::new(parsed));
    assert!(agent.max_drift < SimDuration::from_millis(2));
    assert!(tool.max_drift > agent.max_drift * 10);
    println!(
        "\n-> dense swipe packets smear by up to {} under sendevent; \
         the custom agent keeps every timestamp",
        tool.max_drift
    );
}
