//! The 24-hour workload (§I: "in our study we include 24 hour
//! workloads"): a full day of recorded usage replayed end to end.
//!
//! Demonstrates that the pipeline scales far beyond ten-minute sessions:
//! the day-long trace is classified, replayed without video capture under
//! two governors, and the day's CPU energy compared.
//!
//! Run with: `cargo run --release --example day_in_the_life`

use interlag::core::experiment::{Lab, LabConfig};
use interlag::device::device::{CaptureMode, Device};
use interlag::device::dvfs::Governor;
use interlag::evdev::classify::{classify_trace, count_inputs, ClassifierConfig};
use interlag::evdev::replay::ReplayAgent;
use interlag::evdev::time::SimTime;
use interlag::governors::{Conservative, Ondemand};
use interlag::workloads::datasets::Dataset;

fn main() {
    let workload = Dataset::Day24h.build();
    let trace = workload.script.record_trace();
    println!(
        "24-hour recording: {} raw events, {} interactions, {} background jobs",
        trace.len(),
        workload.script.interactions.len(),
        workload.script.background.len()
    );

    // Input classification over the whole day.
    let inputs = classify_trace(&trace, &ClassifierConfig::default());
    let counts = count_inputs(&inputs);
    println!(
        "classified: {} taps, {} swipes, {} keys (paper's 24 h bar: 218 events)",
        counts.taps, counts.swipes, counts.keys
    );

    // Detect usage sessions: gaps above 15 minutes split sessions.
    let mut sessions = 1;
    for pair in inputs.windows(2) {
        if (pair[1].time - pair[0].time).as_secs_f64() > 900.0 {
            sessions += 1;
        }
    }
    println!("usage sessions detected: {sessions}");

    // Replay the day under two governors (no video: day-long captures are
    // possible but pointless without annotation).
    let lab = Lab::new(LabConfig::default());
    let mut config = lab.device().config().clone();
    config.capture = CaptureMode::None;
    let device = Device::new(config);

    for which in ["ondemand", "conservative"] {
        let started = std::time::Instant::now();
        let mut ondemand;
        let mut conservative;
        let gov: &mut dyn Governor = if which == "ondemand" {
            ondemand = Ondemand::default();
            &mut ondemand
        } else {
            conservative = Conservative::default();
            &mut conservative
        };
        let run = device.run(
            &workload.script,
            ReplayAgent::new(trace.clone()),
            gov,
            workload.run_until(),
        );
        let run = run.expect("clean run");
        let energy = lab.meter().measure(&run.activity);
        let serviced = run
            .interactions
            .iter()
            .filter(|r| r.triggered && !r.spurious && r.service_time.is_some())
            .count();
        println!(
            "\n{which}: simulated {:.1} h in {:.1} s wall clock ({:.0}x real time)",
            run.end_time.as_secs_f64() / 3_600.0,
            started.elapsed().as_secs_f64(),
            run.end_time.as_secs_f64() / started.elapsed().as_secs_f64()
        );
        println!(
            "  serviced {serviced} interactions; CPU busy {:.1} min; \
             dynamic CPU energy {:.1} J (+ idle floor {:.1} J)",
            run.activity.busy_time().as_secs_f64() / 60.0,
            energy.dynamic_mj / 1_000.0,
            energy.idle_mj / 1_000.0
        );
        // A phone-sized battery is ~40 kJ; report the CPU's share.
        println!(
            "  -> {:.2} % of a 40 kJ battery for the day's CPU work",
            100.0 * energy.total_mj() / 40_000_000.0
        );
    }

    // Sanity: nothing in the morning before the first session.
    assert!(inputs.first().expect("inputs exist").time >= SimTime::from_secs(28_000));
}
